"""Derivation of tmem page keys from guest page identifiers.

The tmem ABI identifies a page by (pool id, 64-bit object id, 32-bit
index).  For frontswap the Linux kernel derives the object id and index
from the swap entry (swap type and offset); for cleancache it uses the
inode number and the page's index within the file.  The paper describes
this in Section II-B.

The simulator identifies guest pages by a single non-negative integer (a
virtual page number).  :class:`SwapEntryAddresser` maps that integer to a
(object, index) pair the same way the kernel splits a swap offset, so the
key space, collision behaviour and flush-object granularity all match the
real layout.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TmemKeyError
from ..hypervisor.pages import PageKey

__all__ = ["SwapEntryAddresser"]

#: Number of page slots grouped under one tmem object.  Mirrors the radix
#: used by the Linux frontswap shim (one object per 2^20 slot block).
DEFAULT_PAGES_PER_OBJECT = 1 << 20


@dataclass(frozen=True)
class SwapEntryAddresser:
    """Maps guest virtual page numbers to tmem page keys."""

    pool_id: int
    pages_per_object: int = DEFAULT_PAGES_PER_OBJECT

    def __post_init__(self) -> None:
        if self.pool_id < 0:
            raise TmemKeyError(f"pool_id must be >= 0, got {self.pool_id}")
        if self.pages_per_object <= 0:
            raise TmemKeyError(
                f"pages_per_object must be > 0, got {self.pages_per_object}"
            )

    def key_for(self, page_number: int) -> PageKey:
        """Return the tmem key for guest page *page_number*."""
        if page_number < 0:
            raise TmemKeyError(f"page_number must be >= 0, got {page_number}")
        object_id, index = divmod(page_number, self.pages_per_object)
        return PageKey(pool_id=self.pool_id, object_id=object_id, index=index)

    def page_for(self, key: PageKey) -> int:
        """Inverse of :meth:`key_for` (used by tests)."""
        if key.pool_id != self.pool_id:
            raise TmemKeyError(
                f"key belongs to pool {key.pool_id}, addresser is for pool "
                f"{self.pool_id}"
            )
        return key.object_id * self.pages_per_object + key.index

    def object_of(self, page_number: int) -> int:
        """The object id a guest page falls under (flush-object target)."""
        return page_number // self.pages_per_object
