"""Guest kernel memory-management model.

:class:`GuestKernel` tracks the resident set of a VM's anonymous pages and
services the page-access bursts produced by workloads:

* An access to a resident page is a cheap hit (``resident_access_latency``).
* An access to a non-resident page is a major fault.  The fault is served,
  in order of preference, from tmem via frontswap (a get hypercall), from
  the guest swap area on the virtual disk, or by zero-filling a page that
  was never evicted (first touch).
* When the resident set would exceed the usable RAM, the page-frame
  reclaim algorithm selects victims.  Each victim is offered to tmem via a
  frontswap put; if the put fails the page is written to the swap disk.

The kernel returns the total latency of every burst so the VM driver can
advance its virtual time; the latency breakdown and the fault counters are
kept in :class:`GuestMemStats` for analysis.  This is exactly the coupling
through which the SmarTmem policies affect application running time: a
policy that lets a VM keep more pages in tmem converts multi-millisecond
disk faults into microsecond hypercalls.

Two burst-servicing engines are provided, selected by
``SimulationConfig.guest.access_engine``:

* ``"scalar"`` — the page-at-a-time reference implementation;
* ``"batched"`` (default) — classifies the burst at once: fully resident
  bursts take a vectorized hit path (one batch touch, one counter
  update), and bursts with misses are *planned* with cheap guest-local
  set algebra (victim selection, tmem/swap/first-touch classification)
  and then executed with batched tmem hypercalls, one latency replay pass
  reproducing the scalar accumulation order bit for bit.

Both engines produce identical statistics, traces and scenario results
for the same seed; ``tests/test_access_equivalence.py`` enforces this.

Burst semantics note: a burst's resident-access cost is charged once for
the whole burst (``pages_accessed * resident_access_latency_s``) rather
than accumulated page by page as earlier revisions did.  This is the
batch-friendly canonical definition both engines implement; it shifts
disk submit timestamps by nanoseconds relative to pre-batching revisions
(different float accumulation order), so seeded results are comparable
*between the two engines*, not with outputs recorded before this change.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import accumulate, islice
from typing import Iterable, List, Sequence, Tuple, Optional

import numpy as np

from ..config import SimulationConfig
from ..devices.disk import VirtualDisk
from ..errors import ConfigurationError
from ..hypervisor.tmem_backend import BATCH_GET, BATCH_PUT
from .cleancache import CleancacheClient
from .frontswap import FrontswapClient
from .pfra import make_reclaimer
from .swap import SwapArea

__all__ = [
    "AccessOutcome",
    "GuestMemStats",
    "GuestKernel",
    "RELAXED_NUMPY_MIN_MISSES",
]

#: Minimum planned-burst length (misses) at which the relaxed engine
#: dispatches the vectorized numpy replay instead of the exact per-event
#: walk.  The vectorized replay's fixed array-construction overhead only
#: pays off on long bursts; short ones replay exactly (which also keeps
#: their float latency sums bit-identical to the exact engine).  The
#: value is chosen by the micro-bench sweep in
#: ``benchmarks/tune_relaxed_gate.py``: on the single-core container
#: this repo develops on, the vectorized replay does not reliably beat
#: the exact walk until bursts of ~192 misses (numpy's fixed overhead
#: is large relative to this interpreter's loop cost), so the gate sits
#: at 192.  Re-run the sweep when moving to a different machine class;
#: see PERFORMANCE.md ("Tuning the relaxed replay gate").
RELAXED_NUMPY_MIN_MISSES = 192

# Burst-plan event kinds (see GuestKernel._access_batched).
_EV_TMEM = 0   # eviction offered to tmem (batched put; disk on failure)
_EV_DISK = 1   # eviction straight to the swap disk (tmem disabled)
_F_TMEM = 2    # major fault served from tmem (batched get)
_F_SWAP = 3    # major fault served from the swap disk
_F_FIRST = 4   # major fault on a never-evicted page (zero-fill)


@dataclass
class AccessOutcome:
    """Result of servicing one page-access burst."""

    latency_s: float = 0.0
    pages_accessed: int = 0
    minor_hits: int = 0
    major_faults: int = 0
    faults_from_tmem: int = 0
    faults_from_disk: int = 0
    first_touches: int = 0
    evictions: int = 0
    evictions_to_tmem: int = 0
    evictions_to_disk: int = 0
    failed_tmem_puts: int = 0


@dataclass
class GuestMemStats:
    """Cumulative memory-management statistics for one VM."""

    accesses: int = 0
    minor_hits: int = 0
    major_faults: int = 0
    faults_from_tmem: int = 0
    faults_from_disk: int = 0
    first_touches: int = 0
    evictions: int = 0
    evictions_to_tmem: int = 0
    evictions_to_disk: int = 0
    failed_tmem_puts: int = 0
    time_in_tmem_ops_s: float = 0.0
    time_in_disk_io_s: float = 0.0
    time_in_resident_access_s: float = 0.0
    freed_pages: int = 0

    def absorb(self, outcome: AccessOutcome) -> None:
        self.accesses += outcome.pages_accessed
        self.minor_hits += outcome.minor_hits
        self.major_faults += outcome.major_faults
        self.faults_from_tmem += outcome.faults_from_tmem
        self.faults_from_disk += outcome.faults_from_disk
        self.first_touches += outcome.first_touches
        self.evictions += outcome.evictions
        self.evictions_to_tmem += outcome.evictions_to_tmem
        self.evictions_to_disk += outcome.evictions_to_disk
        self.failed_tmem_puts += outcome.failed_tmem_puts

    @property
    def fault_ratio(self) -> float:
        return self.major_faults / self.accesses if self.accesses else 0.0


class GuestKernel:
    """Memory management of one guest operating system."""

    def __init__(
        self,
        vm_id: int,
        *,
        ram_pages: int,
        swap_pages: int,
        config: SimulationConfig,
        disk: VirtualDisk,
        frontswap: Optional[FrontswapClient] = None,
        cleancache: Optional[CleancacheClient] = None,
    ) -> None:
        if ram_pages <= 0:
            raise ConfigurationError(f"ram_pages must be > 0, got {ram_pages}")
        self.vm_id = vm_id
        self._config = config
        self._disk = disk
        self._frontswap = frontswap
        self._cleancache = cleancache
        reserved = int(ram_pages * config.guest.kernel_reserved_fraction)
        self._usable_ram = max(1, ram_pages - reserved)
        self._ram_pages = ram_pages
        self._resident = make_reclaimer(config.guest.reclaim_algorithm)
        self._swap = SwapArea(swap_pages)
        self._known_pages: set[int] = set()
        # File (page-cache) state: only populated on clean-read bursts of
        # cleancache-enabled VMs; empty otherwise.
        self._file_resident = make_reclaimer(config.guest.reclaim_algorithm)
        self._file_pages: set[int] = set()
        engine = config.guest.access_engine
        self._batched = engine != "scalar"
        self._relaxed = engine == "relaxed"
        self.stats = GuestMemStats()

    # -- introspection ---------------------------------------------------------
    @property
    def ram_pages(self) -> int:
        return self._ram_pages

    @property
    def usable_ram_pages(self) -> int:
        """RAM available to workload pages after the kernel's own share."""
        return self._usable_ram

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    @property
    def swap(self) -> SwapArea:
        return self._swap

    @property
    def frontswap(self) -> Optional[FrontswapClient]:
        return self._frontswap

    @property
    def cleancache(self) -> Optional[CleancacheClient]:
        return self._cleancache

    @property
    def file_cache_pages(self) -> int:
        """Clean file pages currently held in the guest page cache."""
        return len(self._file_resident)

    @property
    def tmem_pages(self) -> int:
        return self._frontswap.pages_in_tmem if self._frontswap else 0

    def is_resident(self, page: int) -> bool:
        return page in self._resident

    def rebind_disk(self, disk: VirtualDisk) -> None:
        """Point guest swap I/O at another node's virtual disk (migration)."""
        self._disk = disk

    def recover_lost_tmem_pages(
        self, pages: Sequence[int], *, now: float
    ) -> int:
        """Re-materialise frontswap pages whose tmem copy was lost.

        A node failure destroys tmem contents (local pages of the dying
        node's VMs, and remote-spilled pages it hosted for peers).  The
        affected pages are dirty anonymous pages, so they must survive:
        the recovery path writes them to the guest's swap area — the
        "refault from disk" fallback — as one background disk write that
        occupies the (shared-storage) disk queue but is not charged to
        any in-flight burst.  Returns the number of pages recovered.
        """
        fs = self._frontswap
        recovered = 0
        for page in pages:
            if fs is not None and fs.forget(page) is None:
                # Not tracked (already faulted back or freed meanwhile).
                continue
            self._swap.store(page)
            recovered += 1
        if recovered:
            self._disk.write(now, recovered, vm_id=self.vm_id)
        return recovered

    def memory_footprint_pages(self) -> int:
        """Pages the workload has touched and not freed (any location)."""
        return len(self._known_pages)

    # -- burst validation --------------------------------------------------------
    @staticmethod
    def _as_page_list(pages: Sequence[int] | Iterable[int]) -> List[int]:
        """Materialize a burst as a list of ints, rejecting negatives."""
        if isinstance(pages, np.ndarray):
            if len(pages) and int(pages.min()) < 0:
                raise ConfigurationError(
                    f"negative page number {int(pages.min())}"
                )
            return pages.tolist()
        page_list = [int(p) for p in pages]
        if page_list:
            smallest = min(page_list)
            if smallest < 0:
                raise ConfigurationError(f"negative page number {smallest}")
        return page_list

    # -- the reclaim path --------------------------------------------------------
    def _evict_one(self, now: float, outcome: AccessOutcome) -> None:
        """Evict one victim page: try tmem first, then the swap disk."""
        victim = self._resident.select_victim()
        outcome.evictions += 1
        # Anonymous pages being reclaimed are treated as dirty: they must be
        # preserved somewhere (this is the frontswap path of the paper).
        if self._frontswap is not None:
            stored, latency = self._frontswap.store(victim, now=now)
            outcome.latency_s += latency
            self.stats.time_in_tmem_ops_s += latency
            if stored:
                outcome.evictions_to_tmem += 1
                return
            outcome.failed_tmem_puts += 1
        # Tmem refused the page (no capacity or over target): swap to disk.
        # The request is issued after the latency already accumulated in
        # this burst — the guest has one swap I/O outstanding at a time.
        disk_latency = self._disk.write(
            now + outcome.latency_s, 1, vm_id=self.vm_id
        )
        self._swap.store(victim)
        outcome.latency_s += disk_latency
        self.stats.time_in_disk_io_s += disk_latency
        outcome.evictions_to_disk += 1

    def _make_room(self, now: float, outcome: AccessOutcome) -> None:
        while len(self._resident) >= self._usable_ram:
            self._evict_one(now, outcome)

    # -- fault handling -----------------------------------------------------------
    def _fault_in(self, page: int, now: float, outcome: AccessOutcome) -> None:
        """Bring a non-resident page into RAM."""
        outcome.major_faults += 1
        outcome.latency_s += self._config.guest.fault_overhead_s

        if self._frontswap is not None and self._frontswap.holds(page):
            hit, latency = self._frontswap.load(page)
            outcome.latency_s += latency
            self.stats.time_in_tmem_ops_s += latency
            if hit:
                outcome.faults_from_tmem += 1
                self._swap.discard(page)
                return
        if page in self._swap:
            disk_latency = self._disk.read(
                now + outcome.latency_s, 1, vm_id=self.vm_id
            )
            self._swap.load(page)
            outcome.latency_s += disk_latency
            self.stats.time_in_disk_io_s += disk_latency
            outcome.faults_from_disk += 1
            return
        # Never evicted before: first touch, zero-fill, no I/O.
        outcome.first_touches += 1

    # -- public API -----------------------------------------------------------------
    def access(
        self,
        pages: Sequence[int] | Iterable[int],
        *,
        now: float,
        write: bool = True,
    ) -> AccessOutcome:
        """Service a burst of page accesses issued at simulated time *now*.

        ``write=True`` bursts model anonymous memory (dirty when evicted,
        preserved through frontswap or swap), which matches the paper's
        frontswap-only evaluation.  ``write=False`` bursts on a VM with
        cleancache enabled are clean file reads and take the page-cache
        path of :meth:`_access_file` instead; without cleancache they are
        treated as anonymous accesses, as earlier revisions did.

        The burst is atomic: it is validated up front, the resident-access
        cost is charged once for the whole burst, and eviction/fault I/O is
        sequenced in page order.  Which engine services it is decided by
        ``config.guest.access_engine``; both produce identical outcomes.
        """
        page_list = self._as_page_list(pages)
        if not write and self._cleancache is not None:
            return self._access_file(page_list, now)
        if self._batched:
            return self._access_batched(page_list, now)
        return self._access_scalar(page_list, now)

    # -- the file (page-cache) path ----------------------------------------------
    def _drop_file_page(self, now: float, outcome: AccessOutcome) -> None:
        """Drop the coldest clean file page, offering it to cleancache.

        Clean pages need no write-back: if cleancache declines the page
        (or is absent) the page is simply discarded — losing it is always
        legal, which is exactly why the ephemeral pools may be reclaimed
        by the hypervisor at any time.
        """
        victim = self._file_resident.select_victim()
        outcome.evictions += 1
        cc = self._cleancache
        if cc is not None:
            stored, latency = cc.put_page(victim, now=now)
            outcome.latency_s += latency
            self.stats.time_in_tmem_ops_s += latency
            if stored:
                outcome.evictions_to_tmem += 1
                return
            outcome.failed_tmem_puts += 1

    def _file_cache_budget(self) -> int:
        """Frames the page cache may occupy: whatever anon memory left over.

        Mirrors Linux's reclaim preference — clean page cache yields
        before anonymous memory is swapped — lazily: anon growth shrinks
        the file cache at the start of the next file burst.  The cache
        always keeps at least one frame so a scan can stream through it.
        """
        return max(1, self._usable_ram - len(self._resident))

    def _access_file(self, page_list: List[int], now: float) -> AccessOutcome:
        """Service a clean file-read burst through the guest page cache.

        A miss consults cleancache (the ephemeral tmem pool) before the
        disk, exactly as the kernel's page-cache read path does.  This is
        a single implementation shared by every access engine — file
        bursts have no engine-dependent plan/replay split — so scalar,
        batched and relaxed runs of a cleancache scenario are identical
        by construction.
        """
        outcome = AccessOutcome()
        outcome.pages_accessed = len(page_list)
        cc = self._cleancache
        file_resident = self._file_resident
        budget = self._file_cache_budget()
        while len(file_resident) > budget:
            self._drop_file_page(now, outcome)
        for page in page_list:
            if page in file_resident:
                file_resident.touch(page)
                outcome.minor_hits += 1
                continue
            if page in self._resident:
                # Also live as a dirty anonymous page: a clean read of it
                # is an ordinary resident hit.
                self._resident.touch(page)
                outcome.minor_hits += 1
                continue
            while len(file_resident) >= budget:
                self._drop_file_page(now, outcome)
            outcome.major_faults += 1
            outcome.latency_s += self._config.guest.fault_overhead_s
            hit = False
            if cc is not None:
                hit, latency = cc.get_page(page)
                outcome.latency_s += latency
                self.stats.time_in_tmem_ops_s += latency
            if hit:
                outcome.faults_from_tmem += 1
            else:
                disk_latency = self._disk.read(
                    now + outcome.latency_s, 1, vm_id=self.vm_id
                )
                outcome.latency_s += disk_latency
                self.stats.time_in_disk_io_s += disk_latency
                outcome.faults_from_disk += 1
            file_resident.insert(page)
            self._file_pages.add(page)
        self._charge_resident_accesses(outcome)
        self.stats.absorb(outcome)
        return outcome

    # -- scalar reference engine --------------------------------------------------
    def _access_scalar(self, page_list: List[int], now: float) -> AccessOutcome:
        """Page-at-a-time reference implementation of :meth:`access`."""
        outcome = AccessOutcome()
        for page in page_list:
            outcome.pages_accessed += 1
            self._known_pages.add(page)
            if page in self._resident:
                self._resident.touch(page)
                outcome.minor_hits += 1
                continue
            # Major fault: free a frame if needed, then fault the page in.
            self._make_room(now, outcome)
            self._fault_in(page, now, outcome)
            self._resident.insert(page)
        self._charge_resident_accesses(outcome)
        self.stats.absorb(outcome)
        return outcome

    def _charge_resident_accesses(self, outcome: AccessOutcome) -> None:
        """Charge the per-page access cost for the whole burst at once."""
        access_time = (
            outcome.pages_accessed * self._config.guest.resident_access_latency_s
        )
        outcome.latency_s += access_time
        self.stats.time_in_resident_access_s += access_time

    # -- batched engine -----------------------------------------------------------
    def _access_batched(self, page_list: List[int], now: float) -> AccessOutcome:
        """Burst-at-once implementation of :meth:`access`.

        Fully resident bursts are handled with one batch membership check
        and one batch touch.  Otherwise the burst is *planned*: a single
        guest-local pass classifies every access (hit, eviction target,
        fault source) using the reclaimer's batch victim selection and the
        frontswap/swap membership sets, staging all tmem traffic on a
        :class:`~repro.guest.frontswap.FrontswapBatch`.  The staged ops
        ship in (usually) one batched hypercall, and a final replay pass
        accumulates latencies and issues disk I/O in exactly the order the
        scalar engine would have — making the two engines bit-identical.
        """
        outcome = AccessOutcome()
        n = len(page_list)
        outcome.pages_accessed = n
        self._known_pages.update(page_list)
        resident = self._resident

        if resident.contains_all(page_list):
            # Vectorized hit path: the whole burst is resident.
            resident.touch_many(page_list)
            outcome.minor_hits = n
            self._charge_resident_accesses(outcome)
            self.stats.absorb(outcome)
            return outcome

        if not self._vector_plan_misses(page_list, now, outcome):
            self._plan_and_replay_misses(page_list, now, outcome)
        self._charge_resident_accesses(outcome)
        self.stats.absorb(outcome)
        return outcome

    def _vector_plan_misses(
        self, page_list: List[int], now: float, outcome: AccessOutcome
    ) -> bool:
        """Whole-burst set-algebra plan for the dominant sweep shapes.

        Applies when the reclaimer's victim choice is insert-order
        independent (strict LRU) and the burst's victims are provably
        disjoint from the burst itself.  Then the whole burst classifies
        up front — resident hits, tmem hits, swap faults, first touches —
        victims for every eviction are selected in one batch, recency
        updates collapse into one bulk promote, and the staged tmem
        traffic ships in a single batched hypercall.  Returns False when
        a precondition fails and the sequential planner must run instead.

        Bursts made of *distinct* pages classify with C-speed membership
        maps.  Bursts with duplicate occurrences (the zipf-shaped
        workloads re-touch hot pages within one burst) take one Python
        classification pass instead: only the *first* occurrence of a
        non-resident page is a major fault — every re-occurrence is a
        minor hit of the freshly faulted page — so the miss sequence is
        the first-occurrence subsequence and the eviction interleaving
        is identical to the distinct case over that subsequence.

        Why up-front victim selection is exact here: victims pop from the
        LRU cold end while burst pages only ever move to the hot end, so
        as long as none of the k coldest pages is part of the burst, the
        k victims a page-at-a-time walk would pick are exactly the k
        coldest pages at burst start, in cold order.
        """
        resident = self._resident
        if not resident.batch_victims_stable:
            return False
        n = len(page_list)
        size = len(resident)
        usable = self._usable_ram
        if size > usable:
            return False
        # dict.fromkeys is the C-speed dedup that also preserves first-
        # occurrence order — exactly the order misses must fault in.
        distinct_map = dict.fromkeys(page_list)
        contains = resident.members().__contains__
        hit_mask: Optional[List[bool]] = None
        hit_distinct: Optional[List[int]] = None
        if len(distinct_map) == n:
            # Distinct pages: C-speed membership map.
            hit_mask = list(map(contains, page_list))
            n_hits = sum(hit_mask)
            if n_hits:
                misses = [p for p, hit in zip(page_list, hit_mask) if not hit]
            else:
                misses = page_list
            resident_in_burst = n_hits
            burst_resident = distinct_map.keys()
        else:
            # Duplicate occurrences: classify first occurrences only —
            # every re-occurrence is a minor hit whichever way the first
            # occurrence resolved (resident, or faulted in by the burst).
            distinct = list(distinct_map)
            mask = list(map(contains, distinct))
            resident_in_burst = sum(mask)
            if resident_in_burst:
                misses = [p for p, hit in zip(distinct, mask) if not hit]
                hit_distinct = [p for p, hit in zip(distinct, mask) if hit]
            else:
                misses = distinct
                hit_distinct = []
            n_hits = n - len(misses)
            burst_resident = None  # built only if the peek check runs
        n_miss = len(misses)
        free_slots = usable - size
        victims_needed = n_miss - free_slots if n_miss > free_slots else 0
        if victims_needed > size - resident_in_burst:
            # Victims would dip into this burst's own pages: the plan
            # would no longer be insert-order independent.
            return False
        if victims_needed and resident_in_burst:
            upcoming = resident.peek_victims(victims_needed)
            if upcoming is None:
                return False
            if burst_resident is None:
                burst_resident = set(hit_distinct)
            if not burst_resident.isdisjoint(upcoming):
                # A burst page is among the k coldest: whether it escapes
                # eviction depends on intra-burst access order, which only
                # the sequential planner tracks.
                return False

        fs = self._frontswap
        in_swap = list(map(self._swap.slots.__contains__, misses))
        victims = resident.select_victims(victims_needed)
        plan: List[Tuple[int, int, int]] = []
        append_plan = plan.append
        statuses: List[int] = []
        remote_costs: List[float] = []

        if fs is not None:
            in_tmem = list(map(fs.held_pages.__contains__, misses))
            get_pages = [p for p, held in zip(misses, in_tmem) if held]
            if victims_needed or get_pages:
                # Closed-form planned path: the burst's put/get
                # interleaving is known up front (puts are consecutive
                # from miss index ``free_slots`` on, with at most one
                # exclusive get between consecutive puts), so the
                # hypervisor can resolve the whole admission sequence
                # with two array operations instead of an op walk.  The
                # backend declines (returns None) when remote tmem or a
                # target makes admission history-dependent.
                if victims_needed:
                    # Exclusive prefix counts of gets, sliced to the put
                    # positions (miss index ``free_slots`` onward).
                    gets_before_puts = list(
                        islice(
                            accumulate(in_tmem, initial=0),
                            free_slots,
                            n_miss,
                        )
                    )
                else:
                    gets_before_puts = []
                planned = fs.execute_planned(
                    victims, get_pages, gets_before_puts, now=now
                )
                if planned is not None:
                    if n_hits:
                        resident.promote_burst_planned(misses, page_list)
                    else:
                        resident.insert_many(page_list)
                    outcome.minor_hits = n_hits
                    put_flags = None if planned is True else planned
                    # The vectorized replay's fixed array overhead only
                    # pays off on long bursts; short ones replay exactly.
                    # Gate tuned by benchmarks/tune_relaxed_gate.py.
                    replay = (
                        self._replay_burst_relaxed
                        if self._relaxed and n_miss >= RELAXED_NUMPY_MIN_MISSES
                        else self._replay_burst
                    )
                    replay(
                        misses, in_tmem, in_swap, victims, put_flags,
                        free_slots, now, outcome,
                    )
                    return True
            batch = fs.begin_batch()
            version = fs.reserve_versions(victims_needed)
            ppo = fs.pages_per_object
            ops: List[Tuple[int, int, int, int]] = []
            op_pages: List[int] = []
            append_op = ops.append
            append_op_page = op_pages.append
            op_index = 0
            victim_cursor = 0
            for j in range(n_miss):
                if j >= free_slots:
                    victim = victims[victim_cursor]
                    victim_cursor += 1
                    object_id, index = divmod(victim, ppo)
                    append_op((BATCH_PUT, object_id, index, version))
                    version += 1
                    append_op_page(victim)
                    append_plan((_EV_TMEM, victim, op_index))
                    op_index += 1
                page = misses[j]
                if in_tmem[j]:
                    object_id, index = divmod(page, ppo)
                    append_op((BATCH_GET, object_id, index, 0))
                    append_op_page(page)
                    append_plan((_F_TMEM, page, op_index))
                    op_index += 1
                elif in_swap[j]:
                    append_plan((_F_SWAP, page, 0))
                else:
                    append_plan((_F_FIRST, page, 0))
            if ops:
                batch.extend_raw(
                    ops,
                    op_pages,
                    put_pages=victims,
                    put_versions=list(
                        range(version - victims_needed, version)
                    ),
                    get_pages=get_pages,
                )
                statuses = batch.execute(now=now)
                remote_costs = fs.drain_remote_costs()
        else:
            victim_cursor = 0
            for j in range(n_miss):
                if j >= free_slots:
                    append_plan((_EV_DISK, victims[victim_cursor], 0))
                    victim_cursor += 1
                page = misses[j]
                if in_swap[j]:
                    append_plan((_F_SWAP, page, 0))
                else:
                    append_plan((_F_FIRST, page, 0))

        if n_hits:
            # The classification already split the burst: promote inserts
            # the fresh pages and replays the occurrences as touches,
            # leaving recency exactly as a scalar walk would (each page
            # ordered by its last occurrence).
            resident.promote_burst_planned(misses, page_list)
        else:
            resident.insert_many(page_list)
        outcome.minor_hits = n_hits
        self._replay_plan(plan, statuses, now, outcome, remote_costs)
        return True

    def _plan_and_replay_misses(
        self, page_list: List[int], now: float, outcome: AccessOutcome
    ) -> None:
        fs = self._frontswap
        resident = self._resident
        swap = self._swap
        usable = self._usable_ram

        plan: List[Tuple[int, int, int]] = []  # (event kind, page, op index)
        statuses: List[int] = []
        batch = fs.begin_batch() if fs is not None else None
        #: victim page -> global op index of its staged (unresolved) put.
        pending_puts: dict[int, int] = {}
        #: pages that will be written to the swap area during the replay.
        pending_swap: set[int] = set()

        touch_hit = resident.touch_if_resident
        insert = resident.insert
        select_victim = resident.select_victim
        select_victims = resident.select_victims
        holds = fs.held_pages.__contains__ if fs is not None else None
        in_swap_slots = swap.slots.__contains__
        stage_store = batch.stage_store if batch is not None else None
        plan_append = plan.append
        minor_hits = 0
        executed_ops = 0
        size = len(resident)

        for page in page_list:
            if touch_hit(page):
                minor_hits += 1
                continue
            need = size - usable + 1
            if need > 0:
                victims = (
                    (select_victim(),) if need == 1 else select_victims(need)
                )
                for victim in victims:
                    if stage_store is not None:
                        op_index = executed_ops + stage_store(victim)
                        pending_puts[victim] = op_index
                        plan_append((_EV_TMEM, victim, op_index))
                    else:
                        pending_swap.add(victim)
                        plan_append((_EV_DISK, victim, 0))
                size -= need
            if batch is not None and page in pending_puts:
                # The fault source of this page depends on the outcome of
                # its still-staged put: ship the batch staged so far, then
                # classify with resolved state.  Rare (intra-burst
                # re-access of a page evicted earlier in the same burst).
                statuses.extend(batch.execute(now=now))
                executed_ops = len(statuses)
                for victim, op_index in pending_puts.items():
                    if not statuses[op_index]:
                        pending_swap.add(victim)
                pending_puts.clear()
            if holds is not None and holds(page):
                op_index = executed_ops + batch.stage_load(page)
                plan_append((_F_TMEM, page, op_index))
            elif in_swap_slots(page) or page in pending_swap:
                pending_swap.discard(page)
                plan_append((_F_SWAP, page, 0))
            else:
                plan_append((_F_FIRST, page, 0))
            insert(page)
            size += 1

        if batch is not None and len(batch):
            statuses.extend(batch.execute(now=now))

        outcome.minor_hits = minor_hits
        # Remote costs accumulate on the client across the (possibly
        # multiple) batch executions above, in op order.
        remote_costs = fs.drain_remote_costs() if fs is not None else []
        self._replay_plan(plan, statuses, now, outcome, remote_costs)

    def _replay_plan(
        self,
        plan: List[Tuple[int, int, int]],
        statuses: List[int],
        now: float,
        outcome: AccessOutcome,
        remote_costs: Sequence[float] = (),
    ) -> None:
        """Accumulate latencies and issue I/O in scalar order.

        Every float addition below mirrors one addition the scalar engine
        performs, with the same constants and in the same order, so the
        burst latency, the cumulative time counters and the disk queue
        evolution are bit-identical across engines.

        *remote_costs* holds the network cost of each remotely-serviced
        op, in op order; a remote op accumulates as the single float the
        hypercall layer returns on the scalar path (base + extra in one
        add), or the engines would drift by rounding order.  On an
        uncontended interconnect every entry equals the constant
        round-trip; on a contended one each entry carries its own queue
        wait — which the scalar path observed identically, because both
        engines issue the channel reservations in the same order at the
        same timestamps.
        """
        config = self._config
        put_lat = config.tmem_put_latency_s
        fail_lat = config.tmem_failed_put_latency_s
        get_lat = config.tmem_get_latency_s
        remote_cursor = 0
        fault_overhead = config.guest.fault_overhead_s
        disk = self._disk
        disk_write = disk.write_one
        disk_read = disk.read_one
        swap = self._swap
        swap_store = swap.store
        swap_load = swap.load
        swap_discard = swap.discard
        vm_id = self.vm_id
        stats = self.stats

        acc = outcome.latency_s
        tmem_time = stats.time_in_tmem_ops_s
        disk_time = stats.time_in_disk_io_s
        evictions = evictions_to_tmem = evictions_to_disk = 0
        failed_puts = 0
        major = from_tmem = from_disk = first = 0

        for kind, page, op_index in plan:
            if kind == _EV_TMEM:
                evictions += 1
                status = statuses[op_index]
                if status:
                    if status == 1:
                        lat = put_lat
                    else:
                        lat = put_lat + remote_costs[remote_cursor]
                        remote_cursor += 1
                    acc += lat
                    tmem_time += lat
                    evictions_to_tmem += 1
                else:
                    acc += fail_lat
                    tmem_time += fail_lat
                    failed_puts += 1
                    disk_latency = disk_write(now + acc, vm_id)
                    swap_store(page)
                    acc += disk_latency
                    disk_time += disk_latency
                    evictions_to_disk += 1
            elif kind == _EV_DISK:
                evictions += 1
                disk_latency = disk_write(now + acc, vm_id)
                swap_store(page)
                acc += disk_latency
                disk_time += disk_latency
                evictions_to_disk += 1
            elif kind == _F_TMEM:
                major += 1
                acc += fault_overhead
                if statuses[op_index] == 1:
                    lat = get_lat
                else:
                    lat = get_lat + remote_costs[remote_cursor]
                    remote_cursor += 1
                acc += lat
                tmem_time += lat
                swap_discard(page)
                from_tmem += 1
            elif kind == _F_SWAP:
                major += 1
                acc += fault_overhead
                disk_latency = disk_read(now + acc, vm_id)
                swap_load(page)
                acc += disk_latency
                disk_time += disk_latency
                from_disk += 1
            else:  # _F_FIRST
                major += 1
                acc += fault_overhead
                first += 1

        outcome.latency_s = acc
        outcome.evictions = evictions
        outcome.evictions_to_tmem = evictions_to_tmem
        outcome.evictions_to_disk = evictions_to_disk
        outcome.failed_tmem_puts = failed_puts
        outcome.major_faults = major
        outcome.faults_from_tmem = from_tmem
        outcome.faults_from_disk = from_disk
        outcome.first_touches = first
        stats.time_in_tmem_ops_s = tmem_time
        stats.time_in_disk_io_s = disk_time

    def _replay_burst(
        self,
        misses: List[int],
        in_tmem: List[bool],
        in_swap: List[bool],
        victims: Sequence[int],
        put_flags: Optional[List[int]],
        free_slots: int,
        now: float,
        outcome: AccessOutcome,
    ) -> None:
        """Latency/IO replay of a planned burst, fused over the plan inputs.

        The planned fast path already knows the burst's full event
        sequence from the classification vectors, so no intermediate
        plan tuples or status lists exist: this loop walks the miss
        sequence directly, performing exactly the float additions (same
        constants, same order) :meth:`_replay_plan` performs for the
        equivalent plan — the two are interchangeable bit for bit.
        Planned bursts carry no remote operations (the closed-form path
        declines when remote tmem is attached) and every get hits, so
        only the per-put success flags (*put_flags*; ``None`` = all
        succeeded) vary the replay.
        """
        config = self._config
        put_lat = config.tmem_put_latency_s
        fail_lat = config.tmem_failed_put_latency_s
        get_lat = config.tmem_get_latency_s
        fault_overhead = config.guest.fault_overhead_s
        disk = self._disk
        disk_write = disk.write_one
        disk_read = disk.read_one
        swap = self._swap
        swap_store = swap.store
        swap_load = swap.load
        swap_discard = swap.discard
        vm_id = self.vm_id
        stats = self.stats

        acc = outcome.latency_s
        tmem_time = stats.time_in_tmem_ops_s
        disk_time = stats.time_in_disk_io_s
        evictions_to_tmem = evictions_to_disk = 0
        from_tmem = from_disk = first = 0
        victim_cursor = 0

        for j, page in enumerate(misses):
            if j >= free_slots:
                victim = victims[victim_cursor]
                if put_flags is None or put_flags[victim_cursor]:
                    acc += put_lat
                    tmem_time += put_lat
                    evictions_to_tmem += 1
                else:
                    acc += fail_lat
                    tmem_time += fail_lat
                    disk_latency = disk_write(now + acc, vm_id)
                    swap_store(victim)
                    acc += disk_latency
                    disk_time += disk_latency
                    evictions_to_disk += 1
                victim_cursor += 1
            acc += fault_overhead
            if in_tmem[j]:
                acc += get_lat
                tmem_time += get_lat
                swap_discard(page)
                from_tmem += 1
            elif in_swap[j]:
                disk_latency = disk_read(now + acc, vm_id)
                swap_load(page)
                acc += disk_latency
                disk_time += disk_latency
                from_disk += 1
            else:
                first += 1

        outcome.latency_s = acc
        outcome.evictions = len(victims)
        outcome.evictions_to_tmem = evictions_to_tmem
        outcome.evictions_to_disk = evictions_to_disk
        outcome.failed_tmem_puts = evictions_to_disk
        outcome.major_faults = len(misses)
        outcome.faults_from_tmem = from_tmem
        outcome.faults_from_disk = from_disk
        outcome.first_touches = first
        stats.time_in_tmem_ops_s = tmem_time
        stats.time_in_disk_io_s = disk_time

    def _replay_burst_relaxed(
        self,
        misses: List[int],
        in_tmem: List[bool],
        in_swap: List[bool],
        victims: Sequence[int],
        put_flags: Optional[List[int]],
        free_slots: int,
        now: float,
        outcome: AccessOutcome,
    ) -> None:
        """Vectorized replay of a planned burst (``access_engine="relaxed"``).

        Computes the burst's latency, disk-queue evolution and time
        counters with bulk numpy operations instead of a per-event walk.
        Every *integer* outcome — fault/eviction classification, swap
        and disk op counts, tmem counters — is identical to the exact
        replay by construction; the float latency accumulators are
        mathematically equal but may differ from the exact engine in the
        last units of precision because the additions associate
        differently.  Relaxed-mode runs are still fully deterministic
        and fingerprint-pinned separately (see
        ``tests/data/scenario_fingerprints_relaxed.json``).

        The disk replay exploits the burst-atomicity of swap I/O: the
        guest keeps one swap request outstanding, so within a burst only
        the *first* disk op can queue behind the device (every later
        submit time already includes the previous completion), and the
        whole FIFO evolution reduces to one wait term plus a sum of
        service times.
        """
        config = self._config
        put_lat = config.tmem_put_latency_s
        fail_lat = config.tmem_failed_put_latency_s
        get_lat = config.tmem_get_latency_s
        fault_overhead = config.guest.fault_overhead_s
        disk = self._disk
        r_serv = disk.read_service_1p
        w_serv = disk.write_service_1p
        stats = self.stats

        n_miss = len(misses)
        n_puts = len(victims)
        tmem_mask = np.asarray(in_tmem, dtype=bool)
        read_mask = np.asarray(in_swap, dtype=bool)
        read_mask &= ~tmem_mask

        # Per-slot latency constants, interleaved as the exact replay
        # orders them: the eviction (if any) of miss j, then its fault.
        ev = np.zeros(n_miss)
        ev_write = np.zeros(n_miss, dtype=bool)
        failed_victims: List[int] = []
        if n_puts:
            if put_flags is None:
                ev[free_slots:] = put_lat
            else:
                flags = np.asarray(put_flags, dtype=bool)
                ev[free_slots:] = np.where(flags, put_lat, fail_lat + w_serv)
                ev_write[free_slots:] = ~flags
                failed_victims = [
                    v for v, ok in zip(victims, put_flags) if not ok
                ]
        fault = np.full(n_miss, fault_overhead)
        fault[tmem_mask] += get_lat
        fault[read_mask] += r_serv

        lat = np.empty(2 * n_miss)
        lat[0::2] = ev
        lat[1::2] = fault
        cum = np.cumsum(lat)

        n_writes = len(failed_victims)
        n_reads = int(read_mask.sum())
        n_gets = int(tmem_mask.sum())
        acc0 = outcome.latency_s
        total = float(cum[-1])
        wait0 = 0.0
        if n_writes or n_reads:
            disk_mask = np.empty(2 * n_miss, dtype=bool)
            disk_mask[0::2] = ev_write
            disk_mask[1::2] = read_mask
            disk_idx = np.flatnonzero(disk_mask)
            k_first = int(disk_idx[0])
            serv_first = w_serv if (k_first & 1) == 0 else r_serv
            submit_first = now + acc0 + float(cum[k_first]) - serv_first
            busy = disk.busy_until
            if busy > submit_first:
                wait0 = busy - submit_first
            busy_final = now + acc0 + float(cum[int(disk_idx[-1])]) + wait0
            disk.commit_replay(
                busy_until=busy_final,
                reads=n_reads,
                writes=n_writes,
                wait_s=wait0,
                vm_id=self.vm_id,
            )

        swap = self._swap
        if failed_victims:
            swap.store_many(failed_victims)
        if n_gets:
            swap.discard_many(
                [p for p, held in zip(misses, in_tmem) if held]
            )
        if n_reads:
            swap.load_many(np.extract(read_mask, misses).tolist())

        outcome.latency_s = acc0 + total + wait0
        outcome.evictions = n_puts
        outcome.evictions_to_tmem = n_puts - n_writes
        outcome.evictions_to_disk = n_writes
        outcome.failed_tmem_puts = n_writes
        outcome.major_faults = n_miss
        outcome.faults_from_tmem = n_gets
        outcome.faults_from_disk = n_reads
        outcome.first_touches = n_miss - n_gets - n_reads
        stats.time_in_tmem_ops_s += (
            (n_puts - n_writes) * put_lat
            + n_writes * fail_lat
            + n_gets * get_lat
        )
        stats.time_in_disk_io_s += wait0 + n_writes * w_serv + n_reads * r_serv

    # -- freeing ------------------------------------------------------------------
    def free(self, pages: Sequence[int] | Iterable[int], *, now: float) -> float:
        """Release pages the workload no longer needs.

        Frees resident frames, discards swap slots and flushes tmem copies
        (the flush path of Algorithm 1).  Returns the latency incurred by
        the flush hypercalls.  Under the batched engine every flush of the
        burst ships in one batched hypercall.
        """
        page_list = self._as_page_list(pages)
        if self._file_pages:
            file_pages = [p for p in page_list if p in self._file_pages]
            if file_pages:
                latency = self._free_file(file_pages, now)
                anon = [p for p in page_list if p not in self._file_pages]
                if anon:
                    if self._batched and self._frontswap is not None:
                        latency += self._free_batched(anon, now)
                    else:
                        latency += self._free_scalar(anon, now)
                return latency
        if self._batched and self._frontswap is not None:
            return self._free_batched(page_list, now)
        return self._free_scalar(page_list, now)

    def _free_file(self, page_list: List[int], now: float) -> float:
        """Release clean file pages (the file was truncated or deleted).

        Drops the page-cache copies and invalidates any cleancache copy —
        the guest must flush, or a later read of a recycled page number
        could observe stale ephemeral data.
        """
        del now  # flush hypercalls carry no queueing in this model
        latency = 0.0
        cc = self._cleancache
        for page in page_list:
            self._file_pages.discard(page)
            if page in self._file_resident:
                self._file_resident.remove(page)
            if cc is not None:
                _, flush_latency = cc.invalidate_page(page)
                latency += flush_latency
                self.stats.time_in_tmem_ops_s += flush_latency
            self.stats.freed_pages += 1
        return latency

    def _free_scalar(self, page_list: List[int], now: float) -> float:
        latency = 0.0
        for page in page_list:
            self._known_pages.discard(page)
            if page in self._resident:
                self._resident.remove(page)
            self._swap.discard(page)
            if self._frontswap is not None and self._frontswap.holds(page):
                _, flush_latency = self._frontswap.invalidate(page)
                latency += flush_latency
                self.stats.time_in_tmem_ops_s += flush_latency
            self.stats.freed_pages += 1
        return latency

    def _free_batched(self, page_list: List[int], now: float) -> float:
        fs = self._frontswap
        assert fs is not None
        resident = self._resident
        swap = self._swap
        flush_lat = self._config.tmem_flush_latency_s
        batch = fs.begin_batch()
        staged: set[int] = set()
        latency = 0.0
        tmem_time = self.stats.time_in_tmem_ops_s
        holds = fs.holds
        for page in page_list:
            self._known_pages.discard(page)
            if page in resident:
                resident.remove(page)
            swap.discard(page)
            if page not in staged and holds(page):
                batch.stage_flush(page)
                staged.add(page)
                latency += flush_lat
                tmem_time += flush_lat
        if len(batch):
            batch.execute(now=now)
        self.stats.time_in_tmem_ops_s = tmem_time
        self.stats.freed_pages += len(page_list)
        return latency

    def release_all(self, *, now: float) -> float:
        """Release every page the current process owns (process exit).

        Anonymous memory is freed, swap slots are discarded, and every
        tmem copy is flushed (the kernel issues flush-object hypercalls on
        swapoff / area invalidation).  Returns the flush latency.
        """
        del now  # present for interface symmetry with access()/free()
        latency = 0.0
        if self._frontswap is not None:
            _, latency = self._frontswap.invalidate_area()
            self.stats.time_in_tmem_ops_s += latency
        for page in list(self._resident.pages()):
            self._resident.remove(page)
        for page in list(self._known_pages):
            self._swap.discard(page)
        self.stats.freed_pages += len(self._known_pages)
        self._known_pages.clear()
        if self._file_pages:
            # Unmount path: drop the page cache and flush the ephemeral
            # pool one inode at a time (cleancache's invalidate_fs).
            cc = self._cleancache
            if cc is not None:
                objects = sorted({cc.object_of(p) for p in self._file_pages})
                for object_id in objects:
                    _, flush_latency = cc.invalidate_inode(object_id)
                    latency += flush_latency
                    self.stats.time_in_tmem_ops_s += flush_latency
            for page in list(self._file_resident.pages()):
                self._file_resident.remove(page)
            self.stats.freed_pages += len(self._file_pages)
            self._file_pages.clear()
        return latency

    def shutdown(self, *, now: float) -> float:
        """Release every page (guest shutdown); returns flush latency."""
        return self.release_all(now=now)
