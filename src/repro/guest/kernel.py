"""Guest kernel memory-management model.

:class:`GuestKernel` tracks the resident set of a VM's anonymous pages and
services the page-access bursts produced by workloads:

* An access to a resident page is a cheap hit (``resident_access_latency``).
* An access to a non-resident page is a major fault.  The fault is served,
  in order of preference, from tmem via frontswap (a get hypercall), from
  the guest swap area on the virtual disk, or by zero-filling a page that
  was never evicted (first touch).
* When the resident set would exceed the usable RAM, the page-frame
  reclaim algorithm selects victims.  Each victim is offered to tmem via a
  frontswap put; if the put fails the page is written to the swap disk.

The kernel returns the total latency of every burst so the VM driver can
advance its virtual time; the latency breakdown and the fault counters are
kept in :class:`GuestMemStats` for analysis.  This is exactly the coupling
through which the SmarTmem policies affect application running time: a
policy that lets a VM keep more pages in tmem converts multi-millisecond
disk faults into microsecond hypercalls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..config import SimulationConfig
from ..devices.disk import VirtualDisk
from ..errors import ConfigurationError
from .frontswap import FrontswapClient
from .pfra import make_reclaimer
from .swap import SwapArea

__all__ = ["AccessOutcome", "GuestMemStats", "GuestKernel"]


@dataclass
class AccessOutcome:
    """Result of servicing one page-access burst."""

    latency_s: float = 0.0
    pages_accessed: int = 0
    minor_hits: int = 0
    major_faults: int = 0
    faults_from_tmem: int = 0
    faults_from_disk: int = 0
    first_touches: int = 0
    evictions: int = 0
    evictions_to_tmem: int = 0
    evictions_to_disk: int = 0
    failed_tmem_puts: int = 0


@dataclass
class GuestMemStats:
    """Cumulative memory-management statistics for one VM."""

    accesses: int = 0
    minor_hits: int = 0
    major_faults: int = 0
    faults_from_tmem: int = 0
    faults_from_disk: int = 0
    first_touches: int = 0
    evictions: int = 0
    evictions_to_tmem: int = 0
    evictions_to_disk: int = 0
    failed_tmem_puts: int = 0
    time_in_tmem_ops_s: float = 0.0
    time_in_disk_io_s: float = 0.0
    time_in_resident_access_s: float = 0.0
    freed_pages: int = 0

    def absorb(self, outcome: AccessOutcome) -> None:
        self.accesses += outcome.pages_accessed
        self.minor_hits += outcome.minor_hits
        self.major_faults += outcome.major_faults
        self.faults_from_tmem += outcome.faults_from_tmem
        self.faults_from_disk += outcome.faults_from_disk
        self.first_touches += outcome.first_touches
        self.evictions += outcome.evictions
        self.evictions_to_tmem += outcome.evictions_to_tmem
        self.evictions_to_disk += outcome.evictions_to_disk
        self.failed_tmem_puts += outcome.failed_tmem_puts

    @property
    def fault_ratio(self) -> float:
        return self.major_faults / self.accesses if self.accesses else 0.0


class GuestKernel:
    """Memory management of one guest operating system."""

    def __init__(
        self,
        vm_id: int,
        *,
        ram_pages: int,
        swap_pages: int,
        config: SimulationConfig,
        disk: VirtualDisk,
        frontswap: Optional[FrontswapClient] = None,
    ) -> None:
        if ram_pages <= 0:
            raise ConfigurationError(f"ram_pages must be > 0, got {ram_pages}")
        self.vm_id = vm_id
        self._config = config
        self._disk = disk
        self._frontswap = frontswap
        reserved = int(ram_pages * config.guest.kernel_reserved_fraction)
        self._usable_ram = max(1, ram_pages - reserved)
        self._ram_pages = ram_pages
        self._resident = make_reclaimer(config.guest.reclaim_algorithm)
        self._swap = SwapArea(swap_pages)
        self._known_pages: set[int] = set()
        self.stats = GuestMemStats()

    # -- introspection ---------------------------------------------------------
    @property
    def ram_pages(self) -> int:
        return self._ram_pages

    @property
    def usable_ram_pages(self) -> int:
        """RAM available to workload pages after the kernel's own share."""
        return self._usable_ram

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    @property
    def swap(self) -> SwapArea:
        return self._swap

    @property
    def frontswap(self) -> Optional[FrontswapClient]:
        return self._frontswap

    @property
    def tmem_pages(self) -> int:
        return self._frontswap.pages_in_tmem if self._frontswap else 0

    def is_resident(self, page: int) -> bool:
        return page in self._resident

    def memory_footprint_pages(self) -> int:
        """Pages the workload has touched and not freed (any location)."""
        return len(self._known_pages)

    # -- the reclaim path --------------------------------------------------------
    def _evict_one(self, now: float, outcome: AccessOutcome) -> None:
        """Evict one victim page: try tmem first, then the swap disk."""
        victim = self._resident.select_victim()
        outcome.evictions += 1
        # Anonymous pages being reclaimed are treated as dirty: they must be
        # preserved somewhere (this is the frontswap path of the paper).
        if self._frontswap is not None:
            stored, latency = self._frontswap.store(victim, now=now)
            outcome.latency_s += latency
            self.stats.time_in_tmem_ops_s += latency
            if stored:
                outcome.evictions_to_tmem += 1
                return
            outcome.failed_tmem_puts += 1
        # Tmem refused the page (no capacity or over target): swap to disk.
        # The request is issued after the latency already accumulated in
        # this burst — the guest has one swap I/O outstanding at a time.
        disk_latency = self._disk.write(
            now + outcome.latency_s, 1, vm_id=self.vm_id
        )
        self._swap.store(victim)
        outcome.latency_s += disk_latency
        self.stats.time_in_disk_io_s += disk_latency
        outcome.evictions_to_disk += 1

    def _make_room(self, now: float, outcome: AccessOutcome) -> None:
        while len(self._resident) >= self._usable_ram:
            self._evict_one(now, outcome)

    # -- fault handling -----------------------------------------------------------
    def _fault_in(self, page: int, now: float, outcome: AccessOutcome) -> None:
        """Bring a non-resident page into RAM."""
        outcome.major_faults += 1
        outcome.latency_s += self._config.guest.fault_overhead_s

        if self._frontswap is not None and self._frontswap.holds(page):
            hit, latency = self._frontswap.load(page)
            outcome.latency_s += latency
            self.stats.time_in_tmem_ops_s += latency
            if hit:
                outcome.faults_from_tmem += 1
                self._swap.discard(page)
                return
        if page in self._swap:
            disk_latency = self._disk.read(
                now + outcome.latency_s, 1, vm_id=self.vm_id
            )
            self._swap.load(page)
            outcome.latency_s += disk_latency
            self.stats.time_in_disk_io_s += disk_latency
            outcome.faults_from_disk += 1
            return
        # Never evicted before: first touch, zero-fill, no I/O.
        outcome.first_touches += 1

    # -- public API -----------------------------------------------------------------
    def access(
        self,
        pages: Sequence[int] | Iterable[int],
        *,
        now: float,
        write: bool = True,
    ) -> AccessOutcome:
        """Service a burst of page accesses issued at simulated time *now*.

        ``write`` is accepted for interface completeness; the current model
        treats all workload pages as anonymous (dirty when evicted), which
        matches the paper's frontswap-only evaluation.
        """
        outcome = AccessOutcome()
        access_cost = self._config.guest.resident_access_latency_s
        for page in pages:
            if page < 0:
                raise ConfigurationError(f"negative page number {page}")
            outcome.pages_accessed += 1
            self._known_pages.add(page)
            if page in self._resident:
                self._resident.touch(page)
                outcome.minor_hits += 1
                outcome.latency_s += access_cost
                self.stats.time_in_resident_access_s += access_cost
                continue
            # Major fault: free a frame if needed, then fault the page in.
            self._make_room(now, outcome)
            self._fault_in(page, now, outcome)
            self._resident.insert(page)
            outcome.latency_s += access_cost
            self.stats.time_in_resident_access_s += access_cost
        self.stats.absorb(outcome)
        return outcome

    def free(self, pages: Sequence[int] | Iterable[int], *, now: float) -> float:
        """Release pages the workload no longer needs.

        Frees resident frames, discards swap slots and flushes tmem copies
        (the flush path of Algorithm 1).  Returns the latency incurred by
        the flush hypercalls.
        """
        latency = 0.0
        for page in pages:
            self._known_pages.discard(page)
            if page in self._resident:
                self._resident.remove(page)
            self._swap.discard(page)
            if self._frontswap is not None and self._frontswap.holds(page):
                _, flush_latency = self._frontswap.invalidate(page)
                latency += flush_latency
                self.stats.time_in_tmem_ops_s += flush_latency
            self.stats.freed_pages += 1
        return latency

    def release_all(self, *, now: float) -> float:
        """Release every page the current process owns (process exit).

        Anonymous memory is freed, swap slots are discarded, and every
        tmem copy is flushed (the kernel issues flush-object hypercalls on
        swapoff / area invalidation).  Returns the flush latency.
        """
        del now  # present for interface symmetry with access()/free()
        latency = 0.0
        if self._frontswap is not None:
            _, latency = self._frontswap.invalidate_area()
            self.stats.time_in_tmem_ops_s += latency
        for page in list(self._resident.pages()):
            self._resident.remove(page)
        for page in list(self._known_pages):
            self._swap.discard(page)
        self.stats.freed_pages += len(self._known_pages)
        self._known_pages.clear()
        return latency

    def shutdown(self, *, now: float) -> float:
        """Release every page (guest shutdown); returns flush latency."""
        return self.release_all(now=now)
