"""Guest (VM) model: kernel memory management, frontswap, TKM.

The guest side reproduces the parts of a Linux guest that matter to tmem:

* a resident-set model with an LRU/CLOCK page-frame-reclaim algorithm
  (:mod:`repro.guest.pfra`, :mod:`repro.guest.kernel`);
* the frontswap front end that tries tmem before the swap disk
  (:mod:`repro.guest.frontswap`) and the cleancache front end for clean
  page-cache pages (:mod:`repro.guest.cleancache`);
* the guest swap area on the virtual disk (:mod:`repro.guest.swap`);
* the Tmem Kernel Module that issues hypercalls and, in the privileged
  domain, relays statistics and targets (:mod:`repro.guest.tkm`);
* :class:`repro.guest.vm.VirtualMachine`, which glues a guest kernel to a
  workload and drives it on the simulation engine.
"""

from .addressing import SwapEntryAddresser
from .pfra import LruReclaim, ClockReclaim, make_reclaimer
from .kernel import GuestKernel, AccessOutcome, GuestMemStats
from .frontswap import FrontswapClient
from .cleancache import CleancacheClient
from .swap import SwapArea
from .tkm import TmemKernelModule, PrivilegedTkm
from .vm import VirtualMachine, WorkloadRun

__all__ = [
    "SwapEntryAddresser",
    "LruReclaim",
    "ClockReclaim",
    "make_reclaimer",
    "GuestKernel",
    "AccessOutcome",
    "GuestMemStats",
    "FrontswapClient",
    "CleancacheClient",
    "SwapArea",
    "TmemKernelModule",
    "PrivilegedTkm",
    "VirtualMachine",
    "WorkloadRun",
]
