"""Device models: host DRAM frame pool and the virtual swap disk."""

from .dram import HostMemory
from .disk import VirtualDisk, DiskStats

__all__ = ["HostMemory", "VirtualDisk", "DiskStats"]
