"""Host physical memory model.

The hypervisor carves the node's DRAM into two regions:

* memory statically assigned to VMs at creation time (their "RAM"), and
* the remaining idle/fallow pages which back the tmem pool.

We only need frame-counting semantics — the simulator never stores page
contents — but the accounting must be exact, because the central question
of the paper is *which VM holds how many tmem frames at each instant*.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, TmemPoolError

__all__ = ["HostMemory"]


@dataclass
class _Region:
    total: int
    used: int = 0

    @property
    def free(self) -> int:
        return self.total - self.used


class HostMemory:
    """Frame-count accounting of the node's physical memory.

    Parameters
    ----------
    total_pages:
        Total DRAM of the node, in simulated pages.
    """

    def __init__(self, total_pages: int) -> None:
        if total_pages <= 0:
            raise ConfigurationError(
                f"total_pages must be > 0, got {total_pages}"
            )
        self._total = int(total_pages)
        self._vm_reserved = 0
        self._tmem = _Region(total=0)

    # -- static VM memory -------------------------------------------------
    @property
    def total_pages(self) -> int:
        return self._total

    @property
    def vm_reserved_pages(self) -> int:
        """Pages statically assigned to VMs as their RAM."""
        return self._vm_reserved

    def reserve_vm_memory(self, pages: int) -> None:
        """Assign *pages* frames to a VM at creation time."""
        if pages <= 0:
            raise ConfigurationError(f"VM memory must be > 0 pages, got {pages}")
        if self._vm_reserved + self._tmem.total + pages > self._total:
            raise ConfigurationError(
                f"cannot reserve {pages} pages: only "
                f"{self.unassigned_pages} unassigned pages remain"
            )
        self._vm_reserved += pages

    def release_vm_memory(self, pages: int) -> None:
        """Return a destroyed VM's frames to the unassigned pool."""
        if pages < 0 or pages > self._vm_reserved:
            raise ConfigurationError(
                f"cannot release {pages} pages (reserved={self._vm_reserved})"
            )
        self._vm_reserved -= pages

    @property
    def unassigned_pages(self) -> int:
        """Fallow pages: not given to any VM and not in the tmem pool."""
        return self._total - self._vm_reserved - self._tmem.total

    # -- tmem pool ---------------------------------------------------------
    def grow_tmem_pool(self, pages: int) -> None:
        """Move *pages* fallow frames into the tmem pool."""
        if pages <= 0:
            raise ConfigurationError(f"tmem pool growth must be > 0, got {pages}")
        if pages > self.unassigned_pages:
            raise ConfigurationError(
                f"cannot grow tmem pool by {pages}: only "
                f"{self.unassigned_pages} fallow pages remain"
            )
        self._tmem.total += pages

    def shrink_tmem_pool(self, pages: int) -> None:
        """Return *pages* free tmem frames to the fallow region.

        Only frames that are currently free may leave the pool — the
        hypervisor never forcibly reclaims stored pages — so callers
        (the cluster coordinator) must bound their request by
        :attr:`tmem_free_pages`.
        """
        if pages <= 0:
            raise ConfigurationError(f"tmem pool shrink must be > 0, got {pages}")
        if pages > self._tmem.free:
            raise TmemPoolError(
                f"cannot shrink tmem pool by {pages}: only "
                f"{self._tmem.free} free frames in the pool"
            )
        self._tmem.total -= pages

    @property
    def tmem_total_pages(self) -> int:
        return self._tmem.total

    @property
    def tmem_used_pages(self) -> int:
        return self._tmem.used

    @property
    def tmem_free_pages(self) -> int:
        return self._tmem.free

    def allocate_tmem_page(self) -> None:
        """Take one free frame from the tmem pool (a successful put)."""
        if self._tmem.free <= 0:
            raise TmemPoolError("tmem pool exhausted")
        self._tmem.used += 1

    def free_tmem_page(self) -> None:
        """Return one frame to the tmem pool (flush or get-and-invalidate)."""
        if self._tmem.used <= 0:
            raise TmemPoolError("tmem pool underflow: freeing an unused page")
        self._tmem.used -= 1

    def adjust_tmem_used(self, delta: int) -> None:
        """Apply the net frame delta of a batched tmem operation.

        A batch may interleave allocations and frees (e.g. a get freeing
        the frame a later put consumes while the pool is otherwise full),
        so only the net change is applied here; the caller is responsible
        for having respected the free-page bound op by op.
        """
        used = self._tmem.used + delta
        if used < 0:
            raise TmemPoolError("tmem pool underflow: freeing an unused page")
        if used > self._tmem.total:
            raise TmemPoolError("tmem pool exhausted")
        self._tmem.used = used

    # -- invariants ----------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise if the frame accounting ever becomes inconsistent."""
        if self._tmem.used < 0 or self._tmem.used > self._tmem.total:
            raise TmemPoolError(
                f"tmem accounting broken: used={self._tmem.used} "
                f"total={self._tmem.total}"
            )
        if self._vm_reserved + self._tmem.total > self._total:
            raise TmemPoolError(
                "assigned memory exceeds physical memory: "
                f"{self._vm_reserved} + {self._tmem.total} > {self._total}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"HostMemory(total={self._total}, vm={self._vm_reserved}, "
            f"tmem={self._tmem.used}/{self._tmem.total})"
        )
