"""Virtual disk model used as the guest swap backing store.

When a tmem put fails (no capacity, or the VM is over its target), the
guest must write the evicted page to its swap device, and read it back on
the next fault.  The performance results in the paper are driven entirely
by how many of these slow disk accesses each policy avoids, so the disk
model needs queueing (concurrent VMs share the physical device through the
host) and realistic seek/transfer costs, but nothing more elaborate.

The device is a single FIFO server: a request arriving at time ``t`` when
the device is busy until ``b`` starts service at ``max(t, b)`` and occupies
the device for ``seek + pages * transfer`` seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import DiskConfig, SimulationConfig
from ..errors import ConfigurationError

__all__ = ["DiskStats", "VirtualDisk"]


@dataclass
class DiskStats:
    """Aggregate counters for one virtual disk."""

    reads: int = 0
    writes: int = 0
    pages_read: int = 0
    pages_written: int = 0
    busy_time_s: float = 0.0
    total_wait_time_s: float = 0.0
    per_vm_pages_read: dict[int, int] = field(default_factory=dict)
    per_vm_pages_written: dict[int, int] = field(default_factory=dict)

    @property
    def total_requests(self) -> int:
        return self.reads + self.writes

    def mean_latency_s(self) -> float:
        if self.total_requests == 0:
            return 0.0
        return self.total_wait_time_s / self.total_requests


class VirtualDisk:
    """FIFO-queued swap disk shared by every VM on the node."""

    def __init__(self, config: SimulationConfig) -> None:
        self._config = config
        self._disk_cfg: DiskConfig = config.disk
        self._busy_until = 0.0
        # Single-page requests dominate the swap path; cache their service
        # time so the hot loop skips the per-call config property chain.
        self._read_service_1p = config.disk_latency_s(1, write=False)
        self._write_service_1p = config.disk_latency_s(1, write=True)
        self.stats = DiskStats()

    @property
    def busy_until(self) -> float:
        """Simulated time at which the device becomes idle."""
        return self._busy_until

    @property
    def read_service_1p(self) -> float:
        """Service time of a single-page read (no queueing)."""
        return self._read_service_1p

    @property
    def write_service_1p(self) -> float:
        """Service time of a single-page write (no queueing)."""
        return self._write_service_1p

    def commit_replay(
        self,
        *,
        busy_until: float,
        reads: int,
        writes: int,
        wait_s: float,
        vm_id: int,
    ) -> None:
        """Apply the aggregate effect of a burst of single-page requests.

        The relaxed guest engine computes a whole burst's FIFO evolution
        in closed form (at most the first request of a burst waits; see
        ``GuestKernel._replay_burst_relaxed``) and commits the device
        state in one call: *busy_until* is the completion time of the
        burst's last request and *wait_s* the single queueing wait.  The
        integer counters land exactly as the equivalent sequence of
        :meth:`read_one`/:meth:`write_one` calls; the float accumulators
        are bulk sums of the same terms.
        """
        stats = self.stats
        service = reads * self._read_service_1p + writes * self._write_service_1p
        self._busy_until = busy_until
        stats.busy_time_s += service
        stats.total_wait_time_s += wait_s + service
        if reads:
            stats.reads += reads
            stats.pages_read += reads
            per_vm = stats.per_vm_pages_read
            per_vm[vm_id] = per_vm.get(vm_id, 0) + reads
        if writes:
            stats.writes += writes
            stats.pages_written += writes
            per_vm = stats.per_vm_pages_written
            per_vm[vm_id] = per_vm.get(vm_id, 0) + writes

    def _service(self, now: float, pages: int, *, write: bool) -> float:
        if pages <= 0:
            raise ConfigurationError(f"disk request must move >= 1 page, got {pages}")
        start = max(now, self._busy_until)
        if pages == 1:
            service_time = self._write_service_1p if write else self._read_service_1p
        else:
            service_time = self._config.disk_latency_s(pages, write=write)
        completion = start + service_time
        self._busy_until = completion
        latency = completion - now
        self.stats.busy_time_s += service_time
        self.stats.total_wait_time_s += latency
        return latency

    def read(self, now: float, pages: int, *, vm_id: int | None = None) -> float:
        """Submit a swap-in read; returns the request latency in seconds."""
        latency = self._service(now, pages, write=False)
        self.stats.reads += 1
        self.stats.pages_read += pages
        if vm_id is not None:
            self.stats.per_vm_pages_read[vm_id] = (
                self.stats.per_vm_pages_read.get(vm_id, 0) + pages
            )
        return latency

    def write(self, now: float, pages: int, *, vm_id: int | None = None) -> float:
        """Submit a swap-out write; returns the request latency in seconds."""
        latency = self._service(now, pages, write=True)
        self.stats.writes += 1
        self.stats.pages_written += pages
        if vm_id is not None:
            self.stats.per_vm_pages_written[vm_id] = (
                self.stats.per_vm_pages_written.get(vm_id, 0) + pages
            )
        return latency

    def read_one(self, now: float, vm_id: int) -> float:
        """Single-page read with the accounting fused into one call.

        Identical float arithmetic (and therefore identical latency
        sequences) to ``read(now, 1, vm_id=vm_id)``; exists because the
        guest's burst replay issues one call per swap fault on the
        hottest loop of the simulator.
        """
        busy = self._busy_until
        start = busy if busy > now else now
        service_time = self._read_service_1p
        completion = start + service_time
        self._busy_until = completion
        latency = completion - now
        stats = self.stats
        stats.busy_time_s += service_time
        stats.total_wait_time_s += latency
        stats.reads += 1
        stats.pages_read += 1
        per_vm = stats.per_vm_pages_read
        per_vm[vm_id] = per_vm.get(vm_id, 0) + 1
        return latency

    def write_one(self, now: float, vm_id: int) -> float:
        """Single-page write; the fused counterpart of :meth:`read_one`."""
        busy = self._busy_until
        start = busy if busy > now else now
        service_time = self._write_service_1p
        completion = start + service_time
        self._busy_until = completion
        latency = completion - now
        stats = self.stats
        stats.busy_time_s += service_time
        stats.total_wait_time_s += latency
        stats.writes += 1
        stats.pages_written += 1
        per_vm = stats.per_vm_pages_written
        per_vm[vm_id] = per_vm.get(vm_id, 0) + 1
        return latency

    def utilization(self, now: float) -> float:
        """Fraction of elapsed simulated time the device was busy."""
        if now <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time_s / now)
