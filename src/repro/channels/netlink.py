"""Netlink-style channel between the TKM and the Memory Manager.

In the real SmarTmem stack the Tmem Kernel Module relays each statistics
snapshot to the user-space Memory Manager over a netlink socket, and the
MM's reply (the new target vector) travels back the same way before being
pushed into the hypervisor via a custom hypercall.

The simulated channel preserves the two properties that matter to the
policies: the one-sampling-interval cadence of messages, and a small,
configurable delivery latency (the statistics the MM acts on are always a
little stale).  Messages are delivered through the simulation engine so
the latency is part of simulated time, not wall-clock time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from ..sim.engine import SimulationEngine
from ..sim.events import EventPriority

__all__ = ["NetlinkMessage", "NetlinkChannel"]

_msg_counter = itertools.count()


@dataclass(frozen=True)
class NetlinkMessage:
    """One message on the channel."""

    seq: int
    kind: str
    payload: Any
    sent_at: float
    delivered_at: float


class NetlinkChannel:
    """A unidirectional, latency-modelled message channel.

    Two instances are used per node: ``kernel -> user`` for statistics and
    ``user -> kernel`` for target vectors.  Delivery order is FIFO.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        *,
        latency_s: float = 0.0,
        name: str = "netlink",
    ) -> None:
        self._engine = engine
        self._latency = float(latency_s)
        self._name = name
        self._receivers: List[Callable[[NetlinkMessage], None]] = []
        self._log: List[NetlinkMessage] = []
        self._dropped = 0
        self._fault_predicate: Optional[Callable[[NetlinkMessage], bool]] = None

    # -- wiring -------------------------------------------------------------
    def subscribe(self, receiver: Callable[[NetlinkMessage], None]) -> None:
        self._receivers.append(receiver)

    def inject_fault(
        self, predicate: Optional[Callable[[NetlinkMessage], bool]]
    ) -> None:
        """Drop messages for which *predicate* returns True (tests only)."""
        self._fault_predicate = predicate

    # -- sending -------------------------------------------------------------
    def send(self, kind: str, payload: Any) -> NetlinkMessage:
        """Send a message; it is delivered after the channel latency."""
        now = self._engine.now
        message = NetlinkMessage(
            seq=next(_msg_counter),
            kind=kind,
            payload=payload,
            sent_at=now,
            delivered_at=now + self._latency,
        )
        if self._fault_predicate is not None and self._fault_predicate(message):
            self._dropped += 1
            return message
        self._log.append(message)

        if self._latency > 0:
            # Bound method + argument instead of a per-message closure:
            # the engine's slab invokes ``self._deliver(message)``.
            self._engine.schedule_call_after(
                self._latency,
                self._deliver,
                message,
                priority=EventPriority.HYPERVISOR,
                label=f"{self._name}:{kind}",
            )
        else:
            self._deliver(message)
        return message

    def _deliver(self, message: NetlinkMessage) -> None:
        for receiver in self._receivers:
            receiver(message)

    # -- introspection ---------------------------------------------------------
    @property
    def messages_sent(self) -> int:
        return len(self._log)

    @property
    def messages_dropped(self) -> int:
        return self._dropped

    def history(self, kind: Optional[str] = None) -> List[NetlinkMessage]:
        if kind is None:
            return list(self._log)
        return [m for m in self._log if m.kind == kind]
