"""Communication channels between kernel space and user space."""

from .netlink import NetlinkChannel, NetlinkMessage

__all__ = ["NetlinkChannel", "NetlinkMessage"]
