"""Modeled network channel between the nodes of a cluster.

Remote-tmem (RAMster-style) traffic crosses host boundaries, so unlike
the netlink channels inside one node it pays a *network* cost: a fixed
per-message latency plus a bandwidth-limited transfer term for the page
payload.  The channel provides two services:

* a **synchronous cost model** for the data path
  (:meth:`InterNodeChannel.transfer_cost_s` /
  :meth:`InterNodeChannel.round_trip_cost_s`): a spilled put or a remote
  get happens inside a guest's access burst, so its cost is simply added
  to the burst latency, exactly like a tmem hypercall's cost;
* **asynchronous control messages** (:meth:`InterNodeChannel.send`)
  delivered through the simulation engine after the one-way latency —
  the cluster coordinator uses this to ship capacity-rebalancing
  decisions to the nodes.

The channel also keeps transfer counters so analysis and tests can audit
how much data actually moved between nodes.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import ConfigurationError
from ..sim.engine import SimulationEngine
from ..sim.events import EventPriority

__all__ = ["InterNodeChannel"]


class InterNodeChannel:
    """Latency/bandwidth model of the cluster interconnect.

    Parameters
    ----------
    engine:
        The shared simulation engine (used for control-message delivery).
    latency_s:
        One-way propagation + protocol latency of a message.
    bandwidth_bytes_s:
        Sustained payload bandwidth of one link, in bytes per second.
    page_bytes:
        Size of one simulated page (the payload unit of remote tmem).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        *,
        latency_s: float,
        bandwidth_bytes_s: float,
        page_bytes: int,
        name: str = "internode",
    ) -> None:
        if latency_s < 0:
            raise ConfigurationError(f"latency_s must be >= 0, got {latency_s}")
        if bandwidth_bytes_s <= 0:
            raise ConfigurationError(
                f"bandwidth_bytes_s must be > 0, got {bandwidth_bytes_s}"
            )
        if page_bytes <= 0:
            raise ConfigurationError(f"page_bytes must be > 0, got {page_bytes}")
        self._engine = engine
        self._latency = float(latency_s)
        self._bandwidth = float(bandwidth_bytes_s)
        self._page_bytes = int(page_bytes)
        self._name = name
        self._page_transfer_s = self._page_bytes / self._bandwidth
        self.pages_moved = 0
        self.bytes_moved = 0
        self.messages_sent = 0

    # -- cost model ---------------------------------------------------------
    @property
    def latency_s(self) -> float:
        return self._latency

    @property
    def page_transfer_s(self) -> float:
        """Bandwidth term for one page payload."""
        return self._page_transfer_s

    def transfer_cost_s(self, pages: int = 1) -> float:
        """One-way cost of moving *pages* page payloads in one message."""
        if pages < 0:
            raise ConfigurationError(f"pages must be >= 0, got {pages}")
        return self._latency + pages * self._page_transfer_s

    def round_trip_cost_s(self, pages: int = 1) -> float:
        """Request/response cost with *pages* page payloads one way.

        This is the data-path cost of a remote tmem operation: the
        request crosses the link, the payload (or acknowledgement)
        crosses back.
        """
        return 2.0 * self._latency + pages * self._page_transfer_s

    # -- accounting ---------------------------------------------------------
    def note_transfer(self, pages: int) -> None:
        """Record *pages* payload pages moved over the link."""
        self.pages_moved += pages
        self.bytes_moved += pages * self._page_bytes

    # -- control messages ---------------------------------------------------
    def send(
        self,
        kind: str,
        payload: Any,
        on_delivery: Callable[[Any], None],
        *,
        priority: int = EventPriority.HYPERVISOR,
    ) -> None:
        """Deliver *payload* to *on_delivery* after the one-way latency."""
        self.messages_sent += 1
        if self._latency > 0:
            # Bound delivery callback + payload argument: the engine's
            # slab invokes ``on_delivery(payload)`` without a closure.
            self._engine.schedule_call_after(
                self._latency,
                on_delivery,
                payload,
                priority=priority,
                label=f"{self._name}:{kind}",
            )
        else:
            on_delivery(payload)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"InterNodeChannel(latency={self._latency:g}s, "
            f"page_transfer={self._page_transfer_s:g}s, "
            f"pages_moved={self.pages_moved})"
        )
