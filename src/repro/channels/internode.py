"""Modeled network channel between the nodes of a cluster.

Remote-tmem (RAMster-style) traffic crosses host boundaries, so unlike
the netlink channels inside one node it pays a *network* cost: a fixed
per-message latency plus a bandwidth-limited transfer term for the page
payload.  The channel provides three services:

* a **synchronous cost model** for the data path
  (:meth:`InterNodeChannel.reserve`): a spilled put or a remote get
  happens inside a guest's access burst, so its cost is simply added to
  the burst latency, exactly like a tmem hypercall's cost;
* **asynchronous bulk transfers** (:meth:`InterNodeChannel.
  transfer_async`) delivered through the simulation engine — VM
  migration uses this to model the guest-state copy;
* **asynchronous control messages** (:meth:`InterNodeChannel.send`) —
  the cluster coordinator uses this to ship capacity-rebalancing
  decisions to the nodes.

Contention model
----------------

Every directed node pair owns one *link*, a FIFO queue with a service
time proportional to the payload size.  In **contended** mode
(``contended=True``) a transfer must wait until the link's previous
payloads finish: a request issued at ``t`` for ``n`` pages starts at
``start = max(t, busy_until)``, occupies the link until ``start +
n * page_transfer_s``, and costs the caller::

    (start - t) + latency_s * 2 + n * page_transfer_s      (data path)
    (start - t) + latency_s     + n * page_transfer_s      (one-way)

so concurrent spills from multiple nodes queue behind each other
instead of overlapping for free.  The link tracks its queue depth (live
transfers), records it as a ``link_queue/<src>-><dst>`` trace, and
accumulates busy time and total queue wait for the per-link section of
cluster results.  Completion is observed via
:meth:`~repro.sim.engine.SimulationEngine.schedule_call_after`, which
keeps the trace and the depth counter exact without polling.

In the default **uncontended** mode the channel reproduces the
pre-queueing stateless cost model bit for bit: the cost of every
transfer is the precomputed ``latency + pages * page_transfer`` with no
queue wait, and no extra engine events are scheduled — single-host and
uncontended-cluster results are unchanged.

The channel also keeps transfer counters so analysis and tests can
audit how much data actually moved between nodes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..sim.engine import SimulationEngine
from ..sim.events import EventPriority

__all__ = ["LinkState", "InterNodeChannel"]


class LinkState:
    """FIFO state and lifetime counters of one directed link."""

    __slots__ = (
        "src",
        "dst",
        "busy_until",
        "queue_depth",
        "max_queue_depth",
        "transfers",
        "pages",
        "busy_s",
        "queue_wait_s",
        "drops",
        "stall_s",
        "fail_fast",
    )

    def __init__(self, src: str, dst: str) -> None:
        self.src = src
        self.dst = dst
        #: Simulated time at which the last queued payload finishes.
        self.busy_until = 0.0
        #: Transfers currently queued or in flight.
        self.queue_depth = 0
        self.max_queue_depth = 0
        self.transfers = 0
        self.pages = 0
        #: Accumulated service (payload) time.
        self.busy_s = 0.0
        #: Accumulated time transfers spent waiting behind earlier ones.
        self.queue_wait_s = 0.0
        #: Packets lost (and retransmitted) inside degradation windows.
        self.drops = 0
        #: Time synchronous transfers stalled waiting out partitions.
        self.stall_s = 0.0
        #: Bulk transfers that failed fast against a partition.
        self.fail_fast = 0

    @property
    def name(self) -> str:
        return f"{self.src}->{self.dst}"

    def describe(self) -> Dict[str, Any]:
        """JSON-safe summary for the cluster result's ``links`` section.

        Degradation counters appear only when nonzero so fault-free runs
        keep the historical (pinned) key set.
        """
        out = {
            "transfers": self.transfers,
            "pages": self.pages,
            "busy_s": self.busy_s,
            "queue_wait_s": self.queue_wait_s,
            "max_queue_depth": self.max_queue_depth,
        }
        if self.drops:
            out["drops"] = self.drops
        if self.stall_s:
            out["stall_s"] = self.stall_s
        if self.fail_fast:
            out["fail_fast"] = self.fail_fast
        return out

    def replay(
        self,
        pages: int,
        at: float,
        page_transfer_s: float,
        completions: "deque",
    ) -> float:
        """Engine-free reenactment of :meth:`InterNodeChannel._occupy`.

        The epoch cluster driver replays the merged cross-shard transfer
        log against plain :class:`LinkState` objects — there is no
        engine on the driver side, so completions (the events that
        decrement ``queue_depth``) live in *completions*, a caller-owned
        deque of finish times kept sorted by construction: replay is
        called in nondecreasing *at* order and FIFO service means finish
        times are nondecreasing too.  Returns the queue wait, the same
        value :meth:`~InterNodeChannel._occupy` would have produced.
        """
        while completions and completions[0] <= at:
            completions.popleft()
            self.queue_depth -= 1
        service = pages * page_transfer_s
        start = self.busy_until if self.busy_until > at else at
        wait = start - at
        self.busy_until = start + service
        self.transfers += 1
        self.pages += pages
        self.busy_s += service
        self.queue_wait_s += wait
        self.queue_depth += 1
        if self.queue_depth > self.max_queue_depth:
            self.max_queue_depth = self.queue_depth
        completions.append(wait + at + service)
        return wait


class InterNodeChannel:
    """Queueing latency/bandwidth model of the cluster interconnect.

    Parameters
    ----------
    engine:
        The shared simulation engine (used for deliveries/completions).
    latency_s:
        One-way propagation + protocol latency of a message.
    bandwidth_bytes_s:
        Sustained payload bandwidth of one link, in bytes per second.
    page_bytes:
        Size of one simulated page (the payload unit of remote tmem).
    contended:
        Enable per-link FIFO queueing.  Off by default: the uncontended
        channel is bit-identical to the historical stateless cost model.
    trace:
        Optional recorder for the ``link_queue/*`` depth traces
        (contended mode only).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        *,
        latency_s: float,
        bandwidth_bytes_s: float,
        page_bytes: int,
        name: str = "internode",
        contended: bool = False,
        trace: Optional["Any"] = None,
    ) -> None:
        if latency_s < 0:
            raise ConfigurationError(f"latency_s must be >= 0, got {latency_s}")
        if bandwidth_bytes_s <= 0:
            raise ConfigurationError(
                f"bandwidth_bytes_s must be > 0, got {bandwidth_bytes_s}"
            )
        if page_bytes <= 0:
            raise ConfigurationError(f"page_bytes must be > 0, got {page_bytes}")
        self._engine = engine
        self._latency = float(latency_s)
        self._bandwidth = float(bandwidth_bytes_s)
        self._page_bytes = int(page_bytes)
        self._name = name
        self._page_transfer_s = self._page_bytes / self._bandwidth
        self.contended = bool(contended)
        self._trace = trace
        self._links: Dict[Tuple[str, str], LinkState] = {}
        self.pages_moved = 0
        self.bytes_moved = 0
        self.messages_sent = 0
        #: True once degradation windows are installed; the undegraded
        #: channel never touches the fault machinery.
        self.degraded = False
        self._degradations: Dict[Tuple[str, str], Tuple[Any, ...]] = {}
        self._loss_rng: Dict[Tuple[str, str], Any] = {}

    #: Retransmission cap inside a lossy window: the data path is modeled
    #: as reliable-with-retries, so a draw streak longer than this is
    #: delivered anyway after paying for the lost attempts.
    MAX_RETRANSMITS = 8

    # -- fault injection ----------------------------------------------------
    def configure_degradations(
        self, link_faults: Any, rng_factory: Any
    ) -> None:
        """Install :class:`~repro.cluster.faults.LinkDegradation` windows.

        Loss draws come from one named RNG stream per directed link
        (``fault/link/<src>-><dst>``) so adding loss to one link never
        perturbs another link's draws or any workload stream.  Replaces
        any previously installed configuration.
        """
        by_link: Dict[Tuple[str, str], list] = {}
        for deg in link_faults:
            by_link.setdefault((deg.src, deg.dst), []).append(deg)
        self._degradations = {
            key: tuple(sorted(windows, key=lambda d: d.start_s))
            for key, windows in by_link.items()
        }
        self.degraded = bool(self._degradations)
        self._loss_rng = {}
        for (src, dst), windows in sorted(self._degradations.items()):
            if any(w.loss_probability > 0.0 for w in windows):
                self._loss_rng[(src, dst)] = rng_factory.stream(
                    f"fault/link/{src}->{dst}"
                )

    def window_at(self, src: str, dst: str, now: float) -> Optional[Any]:
        """The degradation window active on *src* -> *dst*, if any."""
        windows = self._degradations.get((src, dst))
        if not windows:
            return None
        for window in windows:
            if window.active_at(now):
                return window
            if window.start_s > now:
                break
        return None

    def partitioned(self, src: str, dst: str, now: float) -> bool:
        """True while a partition window cuts the directed link."""
        window = self.window_at(src, dst, now)
        return window is not None and window.partition

    def degraded_at(self, src: str, dst: str, now: float) -> bool:
        """True while any degradation window is active on the link."""
        return self.window_at(src, dst, now) is not None

    def timeout_cost_s(self, src: str, dst: str, now: float) -> float:
        """Cost of a data-path request that gets no answer.

        A probe against a partitioned link times out after a round trip
        at the window's (possibly inflated) latency; the spill path
        charges this per failed attempt.
        """
        window = self.window_at(src, dst, now)
        extra = window.extra_latency_s if window is not None else 0.0
        return 2.0 * (self._latency + extra)

    # -- cost model ---------------------------------------------------------
    @property
    def now(self) -> float:
        """The shared engine's clock (the time remote ops are issued at)."""
        return self._engine.now

    @property
    def latency_s(self) -> float:
        return self._latency

    @property
    def lookahead_s(self) -> float:
        """Conservative lookahead the interconnect guarantees.

        Every cross-node interaction pays at least one one-way latency,
        so an event a node generates at time ``t`` cannot influence a
        peer before ``t + lookahead_s``.  The epoch cluster engine
        derives its window width from this bound.
        """
        return self._latency

    @property
    def page_transfer_s(self) -> float:
        """Bandwidth term for one page payload."""
        return self._page_transfer_s

    def transfer_cost_s(self, pages: int = 1) -> float:
        """Uncontended one-way cost of *pages* payloads in one message."""
        if pages < 0:
            raise ConfigurationError(f"pages must be >= 0, got {pages}")
        return self._latency + pages * self._page_transfer_s

    def round_trip_cost_s(self, pages: int = 1) -> float:
        """Uncontended request/response cost with *pages* payloads one way.

        This is the floor of the data-path cost of a remote tmem
        operation: the request crosses the link, the payload (or
        acknowledgement) crosses back.  In contended mode the actual
        cost adds the link's queue wait (see :meth:`reserve`).
        """
        return 2.0 * self._latency + pages * self._page_transfer_s

    # -- link state ---------------------------------------------------------
    def link(self, src: str, dst: str) -> LinkState:
        """The directed link *src* -> *dst*, created on first use."""
        key = (src, dst)
        state = self._links.get(key)
        if state is None:
            state = self._links[key] = LinkState(src, dst)
        return state

    def links(self) -> Dict[str, LinkState]:
        """Live links keyed by ``"src->dst"``, in creation order."""
        return {state.name: state for state in self._links.values()}

    def describe_links(self) -> Dict[str, Dict[str, Any]]:
        """Per-link counters for the cluster result, sorted by name."""
        return {
            state.name: state.describe()
            for state in sorted(self._links.values(), key=lambda s: s.name)
        }

    @property
    def max_queue_depth(self) -> int:
        """Deepest FIFO backlog observed on any link."""
        if not self._links:
            return 0
        return max(state.max_queue_depth for state in self._links.values())

    def _record_depth(self, state: LinkState, now: float) -> None:
        if self._trace is not None:
            self._trace.record(f"link_queue/{state.name}", now, state.queue_depth)

    def _complete(self, state: LinkState) -> None:
        """Completion callback: one payload left the link's FIFO."""
        state.queue_depth -= 1
        self._record_depth(state, self._engine.now)

    def _occupy(
        self,
        state: LinkState,
        pages: int,
        now: float,
        service_s: Optional[float] = None,
        start_at: Optional[float] = None,
    ) -> float:
        """Queue *pages* on the link; returns the queue wait incurred.

        Advances ``busy_until``, maintains the depth counter/trace and
        schedules the completion event.  Callers add the propagation
        latency themselves (one-way vs round-trip).  *service_s*
        overrides the nominal service time (a degradation window's
        bandwidth throttle stretches it); *start_at* defers service to a
        future instant (a sync transfer stalled behind a partition holds
        its queue slot from *now* but only occupies the wire from
        *start_at*).
        """
        service = (
            pages * self._page_transfer_s if service_s is None else service_s
        )
        issue = now if start_at is None else start_at
        start = state.busy_until if state.busy_until > issue else issue
        wait = start - issue
        state.busy_until = start + service
        state.transfers += 1
        state.pages += pages
        state.busy_s += service
        state.queue_wait_s += wait
        state.queue_depth += 1
        if state.queue_depth > state.max_queue_depth:
            state.max_queue_depth = state.queue_depth
        self._record_depth(state, now)
        self._engine.schedule_call_after(
            (issue - now) + wait + service,
            self._complete,
            state,
            priority=EventPriority.HYPERVISOR,
            label=f"{self._name}:drain:{state.name}",
        )
        return wait

    def reserve(self, src: str, dst: str, pages: int, now: float) -> float:
        """Synchronous data-path cost of a round-trip moving *pages*.

        The payload travels *src* -> *dst* (a spilled put) or is pulled
        back over the same directed link (a remote get names the hosting
        peer as *src*).  Uncontended: exactly the stateless round trip.
        Contended: the link's queue wait is added and the link stays
        busy for the payload's service time, so later transfers queue.
        """
        if pages < 0:
            raise ConfigurationError(f"pages must be >= 0, got {pages}")
        self.pages_moved += pages
        self.bytes_moved += pages * self._page_bytes
        if self.degraded:
            return self._reserve_degraded(src, dst, pages, now)
        if not self.contended:
            return self.round_trip_cost_s(pages)
        state = self.link(src, dst)
        wait = self._occupy(state, pages, now)
        return wait + self.round_trip_cost_s(pages)

    def _reserve_degraded(
        self, src: str, dst: str, pages: int, now: float
    ) -> float:
        """Degradation-aware synchronous cost (see :meth:`reserve`).

        Partition windows stall the caller until the link heals, then
        the transfer pays the (possibly still degraded) cost at heal
        time.  Active windows inflate latency and service time; loss
        windows add one timed-out attempt per seeded drop.  With no
        active window the arithmetic reduces to the nominal cost, so a
        link outside its windows is bit-identical to an undegraded one.
        """
        state = self.link(src, dst)
        stall = 0.0
        t = now
        window = self.window_at(src, dst, t)
        while window is not None and window.partition:
            stall += window.end_s - t
            state.stall_s += window.end_s - t
            t = window.end_s
            window = self.window_at(src, dst, t)
        latency = self._latency
        unit = self._page_transfer_s
        if window is not None:
            latency += window.extra_latency_s
            unit /= window.bandwidth_factor
        cost = 2.0 * latency + pages * unit
        if window is not None and window.loss_probability > 0.0:
            rng = self._loss_rng.get((src, dst))
            if rng is not None:
                drops = 0
                while (
                    drops < self.MAX_RETRANSMITS
                    and rng.random() < window.loss_probability
                ):
                    drops += 1
                if drops:
                    state.drops += drops
                    cost += drops * (2.0 * latency + pages * unit)
        if self.contended:
            cost += self._occupy(
                state, pages, now, service_s=pages * unit, start_at=t
            )
        return stall + cost

    def transfer_async(
        self,
        src: str,
        dst: str,
        pages: int,
        on_complete: Callable[[Any], None],
        arg: Any,
        *,
        priority: int = EventPriority.HYPERVISOR,
        label: str = "",
    ) -> float:
        """Move a bulk payload *src* -> *dst*; deliver *arg* on arrival.

        Used for VM-migration state copies.  Returns the total transfer
        duration (queue wait + one-way latency + service time); the
        completion callback fires through the engine after that delay.
        Unlike :meth:`reserve` this occupies the link in both modes —
        migration is new machinery with no pinned history.
        """
        if pages < 0:
            raise ConfigurationError(f"pages must be >= 0, got {pages}")
        now = self._engine.now
        state = self.link(src, dst)
        if self.degraded:
            window = self.window_at(src, dst, now)
            if window is not None and window.partition:
                # Fail fast: nothing crosses a partitioned link.  The
                # whole transfer is rescheduled at heal time (when it
                # re-evaluates any follow-on window).
                state.fail_fast += 1
                delay = window.end_s - now
                self._engine.schedule_call_after(
                    delay,
                    self._retry_transfer,
                    (src, dst, pages, on_complete, arg, priority, label),
                    priority=priority,
                    label=label or f"{self._name}:retry:{state.name}",
                )
                return delay
            if window is not None:
                unit = self._page_transfer_s / window.bandwidth_factor
                wait = self._occupy(state, pages, now, service_s=pages * unit)
                self.pages_moved += pages
                self.bytes_moved += pages * self._page_bytes
                cost = (
                    wait
                    + self._latency
                    + window.extra_latency_s
                    + pages * unit
                )
                self._engine.schedule_call_after(
                    cost,
                    on_complete,
                    arg,
                    priority=priority,
                    label=label or f"{self._name}:copy:{state.name}",
                )
                return cost
        wait = self._occupy(state, pages, now)
        self.pages_moved += pages
        self.bytes_moved += pages * self._page_bytes
        cost = wait + self.transfer_cost_s(pages)
        self._engine.schedule_call_after(
            cost,
            on_complete,
            arg,
            priority=priority,
            label=label or f"{self._name}:copy:{state.name}",
        )
        return cost

    def _retry_transfer(self, request: Tuple[Any, ...]) -> None:
        """Re-issue a bulk transfer that failed fast against a partition."""
        src, dst, pages, on_complete, arg, priority, label = request
        self.transfer_async(
            src, dst, pages, on_complete, arg, priority=priority, label=label
        )

    # -- accounting ---------------------------------------------------------
    def note_transfer(self, pages: int) -> None:
        """Record *pages* payload pages moved over the link.

        Retained for callers that account a transfer whose cost was paid
        elsewhere (the uncontended remote-tmem fast path).
        """
        self.pages_moved += pages
        self.bytes_moved += pages * self._page_bytes

    # -- control messages ---------------------------------------------------
    def send(
        self,
        kind: str,
        payload: Any,
        on_delivery: Callable[[Any], None],
        *,
        priority: int = EventPriority.HYPERVISOR,
        src: str = "",
        dst: str = "",
    ) -> None:
        """Deliver *payload* to *on_delivery* after the one-way latency.

        Control messages carry no page payload, so their service time is
        zero; in contended mode they still queue FIFO behind in-flight
        payloads on the named link (when *src*/*dst* are given).
        """
        self.messages_sent += 1
        delay = self._latency
        if self.contended and src and dst:
            state = self.link(src, dst)
            wait = self._occupy(state, 0, self._engine.now)
            delay += wait
        if delay > 0:
            # Bound delivery callback + payload argument: the engine's
            # slab invokes ``on_delivery(payload)`` without a closure.
            self._engine.schedule_call_after(
                delay,
                on_delivery,
                payload,
                priority=priority,
                label=f"{self._name}:{kind}",
            )
        else:
            on_delivery(payload)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"InterNodeChannel(latency={self._latency:g}s, "
            f"page_transfer={self._page_transfer_s:g}s, "
            f"contended={self.contended}, pages_moved={self.pages_moved})"
        )
