"""Time-series trace recording.

The figures in the paper (Figures 4, 6, 8 and 10) plot, for every VM, the
number of tmem pages held over time, sampled at the one-second VIRQ
cadence.  :class:`TraceRecorder` collects named series of ``(time, value)``
samples and exposes them as numpy arrays for analysis.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Tuple

import numpy as np

from ..errors import AnalysisError
from ..serialize import decode_floats, encode_floats

__all__ = ["TraceSeries", "TraceRecorder"]


def _float_buffer() -> "array[float]":
    return array("d")


@dataclass
class TraceSeries:
    """A single named time series.

    Samples are stored in ``array('d')`` append buffers: one compact
    C-double per sample instead of a boxed Python float, and the numpy
    views below materialize straight from the buffer without touching
    the interpreter per element.  The JSON form (``to_dict``/
    ``from_dict``) is unchanged from the list-backed representation —
    the encoder sees the same float sequence either way.
    """

    name: str
    _times: "array[float]" = field(default_factory=_float_buffer)
    _values: "array[float]" = field(default_factory=_float_buffer)

    def append(self, time: float, value: float) -> None:
        times = self._times
        if times and time < times[-1]:
            raise AnalysisError(
                f"trace {self.name!r}: non-monotonic sample at t={time} "
                f"(last was {times[-1]})"
            )
        times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        # np.array copies through the buffer protocol (one memcpy); a
        # sharing view would pin the buffer and make later appends fail.
        return np.array(self._times, dtype=np.float64)

    @property
    def values(self) -> np.ndarray:
        return np.array(self._values, dtype=np.float64)

    def as_tuples(self) -> List[Tuple[float, float]]:
        return list(zip(self._times, self._values))

    def value_at(self, time: float) -> float:
        """Last recorded value at or before *time* (step interpolation)."""
        times = self.times
        if times.size == 0:
            raise AnalysisError(f"trace {self.name!r} is empty")
        idx = int(np.searchsorted(times, time, side="right")) - 1
        if idx < 0:
            raise AnalysisError(
                f"trace {self.name!r} has no sample at or before t={time}"
            )
        return float(self._values[idx])

    def mean(self) -> float:
        if not self._values:
            raise AnalysisError(f"trace {self.name!r} is empty")
        return float(np.mean(self.values))

    def max(self) -> float:
        if not self._values:
            raise AnalysisError(f"trace {self.name!r} is empty")
        return float(np.max(self.values))

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Strict-JSON-safe representation (NaN/inf encoded portably)."""
        return {
            "name": self.name,
            "times": encode_floats(self._times),
            "values": encode_floats(self._values),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceSeries":
        series = cls(name=data["name"])
        # Assign directly instead of append(): the stored samples already
        # passed the monotonicity check when they were recorded.
        series._times = array("d", decode_floats(data["times"]))
        series._values = array("d", decode_floats(data["values"]))
        if len(series._times) != len(series._values):
            raise AnalysisError(
                f"trace {series.name!r}: times/values length mismatch "
                f"({len(series._times)} vs {len(series._values)})"
            )
        return series


class TraceRecorder:
    """A bag of named :class:`TraceSeries`."""

    def __init__(self) -> None:
        self._series: Dict[str, TraceSeries] = {}

    def series(self, name: str) -> TraceSeries:
        """Get (creating on first use) the series called *name*."""
        if name not in self._series:
            self._series[name] = TraceSeries(name)
        return self._series[name]

    def record(self, name: str, time: float, value: float) -> None:
        self.series(name).append(time, value)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def names(self) -> Iterable[str]:
        return sorted(self._series)

    def get(self, name: str) -> TraceSeries:
        try:
            return self._series[name]
        except KeyError:
            raise AnalysisError(f"no trace named {name!r} was recorded") from None

    def as_dict(self) -> Mapping[str, TraceSeries]:
        return dict(self._series)

    def merge(self, other: "TraceRecorder", *, prefix: str = "") -> None:
        """Copy every series from *other*, optionally prefixing names."""
        for name, series in other.as_dict().items():
            target = self.series(prefix + name)
            for t, v in series.as_tuples():
                target.append(t, v)

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Strict-JSON-safe representation of every series (sorted by name)."""
        return {name: self._series[name].to_dict() for name in self.names()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceRecorder":
        recorder = cls()
        for name, series_data in data.items():
            series = TraceSeries.from_dict(series_data)
            if series.name != name:
                raise AnalysisError(
                    f"trace dict key {name!r} does not match series name "
                    f"{series.name!r}"
                )
            recorder._series[name] = series
        return recorder
