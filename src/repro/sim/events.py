"""Event records used by the simulation engine."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["EventPriority", "Event"]


class EventPriority(enum.IntEnum):
    """Tie-break ordering for events scheduled at the same instant.

    Lower values run first.  The distinction matters for the sampling
    machinery: when a VIRQ tick coincides with workload activity, the
    statistics snapshot should observe the state *before* the new interval's
    activity is accounted, mirroring the hypervisor's timer interrupt
    preempting guest execution.
    """

    TIMER = 0
    HYPERVISOR = 1
    NORMAL = 2
    WORKLOAD = 3
    LOW = 4


_sequence = itertools.count()


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Events order by ``(time, priority, sequence)``; the sequence number
    makes the ordering total and FIFO among equal-time, equal-priority
    events, which keeps runs deterministic.
    """

    time: float
    priority: int
    sequence: int = field(compare=True)
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    #: Set by the owning engine so it can keep a live-event counter
    #: without scanning the queue; cleared once the event has run.
    on_cancel: Callable[[], Any] | None = field(
        compare=False, default=None, repr=False
    )

    @classmethod
    def create(
        cls,
        time: float,
        callback: Callable[[], Any],
        *,
        priority: int = EventPriority.NORMAL,
        label: str = "",
    ) -> "Event":
        return cls(
            time=time,
            priority=int(priority),
            sequence=next(_sequence),
            callback=callback,
            label=label,
        )

    def cancel(self) -> None:
        """Mark the event as cancelled; the engine will skip it."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel()
            self.on_cancel = None
