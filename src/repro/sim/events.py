"""Event records and handles used by the simulation engine.

The engine stores pending work in a *slab*: per-event state (callback,
label, liveness) lives in parallel slot arrays owned by the engine, and
the heap orders plain ``(time, priority, seq, slot)`` tuples pointing
into it.  Slots are recycled through a free list, so steady-state
scheduling allocates no per-event objects beyond the heap tuple itself.

Two lightweight handle types front the slab:

* :class:`EventHandle` — returned by ``schedule_at``/``schedule_after``;
  supports cancellation and introspection without keeping the event's
  callback alive after it has run.
* :class:`RecurringTimer` — an engine-owned periodic timer record that
  re-arms *in place* after each firing (same slot, fresh heap entry)
  instead of rebuilding a rescheduling closure per fire.

The legacy :class:`Event` dataclass is retained for API compatibility
(it still orders by ``(time, priority, sequence)`` and can be used as a
standalone record), but the engine no longer allocates one per scheduled
callback.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["EventPriority", "Event", "EventHandle", "RecurringTimer"]


class EventPriority(enum.IntEnum):
    """Tie-break ordering for events scheduled at the same instant.

    Lower values run first.  The distinction matters for the sampling
    machinery: when a VIRQ tick coincides with workload activity, the
    statistics snapshot should observe the state *before* the new interval's
    activity is accounted, mirroring the hypervisor's timer interrupt
    preempting guest execution.
    """

    TIMER = 0
    HYPERVISOR = 1
    NORMAL = 2
    WORKLOAD = 3
    LOW = 4


_sequence = itertools.count()


@dataclass(order=True)
class Event:
    """A single scheduled callback (legacy standalone record).

    Events order by ``(time, priority, sequence)``; the sequence number
    makes the ordering total and FIFO among equal-time, equal-priority
    events, which keeps runs deterministic.
    """

    time: float
    priority: int
    sequence: int = field(compare=True)
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    #: Optional cancellation hook (legacy; the engine-side live counter
    #: now lives in the slab, not on the record).
    on_cancel: Callable[[], Any] | None = field(
        compare=False, default=None, repr=False
    )

    @classmethod
    def create(
        cls,
        time: float,
        callback: Callable[[], Any],
        *,
        priority: int = EventPriority.NORMAL,
        label: str = "",
    ) -> "Event":
        return cls(
            time=time,
            priority=int(priority),
            sequence=next(_sequence),
            callback=callback,
            label=label,
        )

    def cancel(self) -> None:
        """Mark the event as cancelled; the engine will skip it."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel()
            self.on_cancel = None


class EventHandle:
    """Cancellation/introspection handle for one scheduled event.

    The handle carries the slot index and the slot *generation* observed
    at scheduling time, so a stale handle (whose event already ran and
    whose slot was recycled) can never cancel an unrelated later event.
    """

    __slots__ = ("_engine", "_slot", "_gen", "time", "priority",
                 "sequence", "label", "_cancelled")

    def __init__(
        self,
        engine: "SimulationEngine",  # noqa: F821
        slot: int,
        gen: int,
        time: float,
        priority: int,
        sequence: int,
        label: str,
    ) -> None:
        self._engine = engine
        self._slot = slot
        self._gen = gen
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.label = label
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Cancel the event; a no-op once it has run or been cancelled."""
        if self._cancelled:
            return
        self._cancelled = True
        self._engine._cancel_slot(self._slot, self._gen)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        state = "cancelled" if self._cancelled else "scheduled"
        return (
            f"EventHandle(t={self.time!r}, priority={self.priority}, "
            f"seq={self.sequence}, label={self.label!r}, {state})"
        )


class RecurringTimer:
    """An engine-owned periodic timer that re-arms in place.

    Created by :meth:`SimulationEngine.schedule_recurring`.  The timer
    holds one slab slot for its whole lifetime; after each firing the
    engine pushes a fresh heap entry for the same slot instead of
    allocating a new event and a rescheduling closure.

    Instances are callable for backward compatibility with the previous
    API, which returned a zero-argument cancel function.
    """

    __slots__ = ("_engine", "interval", "callback", "priority", "label",
                 "_slot", "cancelled")

    def __init__(
        self,
        engine: "SimulationEngine",  # noqa: F821
        interval: float,
        callback: Callable[[], Any],
        priority: int,
        label: str,
    ) -> None:
        self._engine = engine
        self.interval = interval
        self.callback = callback
        self.priority = priority
        self.label = label
        self._slot: Optional[int] = None
        self.cancelled = False

    def cancel(self) -> None:
        """Stop the recurrence; the pending firing (if any) is skipped."""
        if self.cancelled:
            return
        self.cancelled = True
        self._engine._cancel_timer(self)

    # Backward compatibility: ``schedule_recurring`` used to return a
    # plain cancel function; existing callers invoke the result directly.
    __call__ = cancel

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        state = "cancelled" if self.cancelled else "armed"
        return (
            f"RecurringTimer(interval={self.interval!r}, "
            f"label={self.label!r}, {state})"
        )
