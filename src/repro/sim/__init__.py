"""Discrete-event simulation kernel.

The engine is deliberately small: a binary-heap event queue, a monotonic
simulated clock, recurring timers, and a numpy-backed time-series trace
recorder.  Higher layers (hypervisor, guests, memory manager) schedule
callbacks on the engine rather than subclassing it.
"""

from .engine import SimulationEngine
from .events import Event, EventHandle, EventPriority, RecurringTimer
from .trace import TraceRecorder, TraceSeries
from .rng import RngFactory

__all__ = [
    "SimulationEngine",
    "Event",
    "EventHandle",
    "EventPriority",
    "RecurringTimer",
    "TraceRecorder",
    "TraceSeries",
    "RngFactory",
]
