"""Deterministic random-number stream management.

Every stochastic component (each workload, the disk jitter model, ...)
gets its own :class:`numpy.random.Generator` derived from the global seed
and a stable string name.  This keeps scenario runs reproducible and,
crucially, keeps the streams independent: adding randomness to one
component does not perturb any other component's draws.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngFactory"]


class RngFactory:
    """Creates named, independent random generators from a single seed."""

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return a generator unique to (*seed*, *name*)."""
        digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
        # 4 words of 64 bits from the digest seed the bit generator.
        words = [
            int.from_bytes(digest[i : i + 8], "little") for i in range(0, 32, 8)
        ]
        return np.random.Generator(np.random.PCG64(words))

    def child(self, name: str) -> "RngFactory":
        """Derive a new factory namespaced under *name*."""
        digest = hashlib.sha256(f"{self._seed}/{name}".encode()).digest()
        return RngFactory(int.from_bytes(digest[:8], "little"))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RngFactory(seed={self._seed})"
