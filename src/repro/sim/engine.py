"""Heap-based discrete-event simulation engine.

The engine owns a monotonically non-decreasing clock (``now``) and a
binary heap of plain ``(time, priority, seq, slot)`` tuples.  Per-event
state — callback, optional argument, label, liveness — lives in a slab
of parallel slot arrays recycled through a free list, so steady-state
scheduling allocates no per-event record: pushing an event is one tuple
plus a slot write, cancelling flips a slot flag, and ``pending_events``
is a counter maintained on those transitions (O(1) to read).

Recurring activity (e.g. the hypervisor's one-second statistics VIRQ,
the cluster coordinator's rebalance tick) uses
:meth:`schedule_recurring`, which returns an engine-owned
:class:`~repro.sim.events.RecurringTimer` that re-arms in place after
each firing — same slab slot, fresh heap entry — instead of scheduling
a new closure per fire.

The engine is single-threaded and deterministic: events at the same
timestamp are ordered by priority then insertion order.  Components
that can prove their next action precedes every other live event may
use :meth:`try_fast_forward` to advance the clock inline and skip the
heap round-trip entirely (see the VM driver's burst fast-forward path);
the grant conditions replicate exactly the checks ``run()`` performs
between events, so fast-forwarded runs are order-identical to
heap-dispatched ones.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional, Tuple

from ..errors import ClockError, EventError, SimulationError
from .events import EventHandle, EventPriority, RecurringTimer

__all__ = ["SimulationEngine"]

#: Slot states.  ``_LIVE`` and ``_TIMER`` are the two "will fire" states
#: and are deliberately the largest values so liveness is one comparison
#: (``state >= _LIVE``) on the hot pop path.
_FREE = 0
_CANCELLED = 1
_LIVE = 2
_TIMER = 3

#: Sentinel distinguishing "no argument" from "argument is None".
_NO_ARG = object()


class SimulationEngine:
    """A minimal but complete discrete-event engine (slab-backed)."""

    def __init__(self, *, start_time: float = 0.0, fast_forward: bool = True) -> None:
        self._now = float(start_time)
        #: Heap of (time, priority, seq, slot) tuples.
        self._queue: List[Tuple[float, int, int, int]] = []
        self._running = False
        self._stopped = False
        self._events_executed = 0
        self._live_events = 0
        #: Per-engine insertion sequence; makes heap ordering total.
        self._seq = 0
        # -- the event slab ----------------------------------------------
        self._slot_callback: List[Any] = []
        self._slot_arg: List[Any] = []
        self._slot_label: List[str] = []
        self._slot_state: List[int] = []
        self._slot_gen: List[int] = []
        self._free_slots: List[int] = []
        # -- run-scoped controls (consulted by try_fast_forward) ---------
        self._run_until: Optional[float] = None
        self._run_stop_when: Optional[Callable[[], bool]] = None
        self._run_max_events: Optional[int] = None
        self._run_executed = 0
        self._fast_forward_enabled = bool(fast_forward)

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of callbacks run so far, including fast-forwarded ones."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.

        Maintained as a counter on schedule/cancel/fire transitions, so
        reading it is O(1) rather than an O(n) scan.  An armed recurring
        timer counts as one pending event.
        """
        return self._live_events

    @property
    def fast_forward_enabled(self) -> bool:
        """Whether :meth:`try_fast_forward` may grant inline advances."""
        return self._fast_forward_enabled

    # -- slab management -------------------------------------------------------
    def _alloc_slot(self, callback: Any, arg: Any, label: str, state: int) -> int:
        free = self._free_slots
        if free:
            slot = free.pop()
            self._slot_callback[slot] = callback
            self._slot_arg[slot] = arg
            self._slot_label[slot] = label
            self._slot_state[slot] = state
        else:
            slot = len(self._slot_callback)
            self._slot_callback.append(callback)
            self._slot_arg.append(arg)
            self._slot_label.append(label)
            self._slot_state.append(state)
            self._slot_gen.append(0)
        return slot

    def _release_slot(self, slot: int) -> None:
        self._slot_state[slot] = _FREE
        self._slot_callback[slot] = None
        self._slot_arg[slot] = _NO_ARG
        self._slot_label[slot] = ""
        self._slot_gen[slot] += 1
        self._free_slots.append(slot)

    def _cancel_slot(self, slot: int, gen: int) -> None:
        """Cancel a one-shot event identified by (slot, generation).

        Stale handles (the event already ran; the slot may have been
        recycled) are detected by the generation mismatch and ignored.
        """
        if self._slot_gen[slot] != gen or self._slot_state[slot] != _LIVE:
            return
        self._slot_state[slot] = _CANCELLED
        self._slot_callback[slot] = None
        self._slot_arg[slot] = _NO_ARG
        self._live_events -= 1

    def _cancel_timer(self, timer: RecurringTimer) -> None:
        slot = timer._slot
        if slot is None:
            return
        timer._slot = None
        if self._slot_state[slot] == _TIMER:
            self._slot_state[slot] = _CANCELLED
            self._live_events -= 1

    # -- scheduling ------------------------------------------------------------
    def _push(
        self, time: float, callback: Any, arg: Any, priority: int, label: str
    ) -> Tuple[int, int]:
        slot = self._alloc_slot(callback, arg, label, _LIVE)
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (time, priority, seq, slot))
        self._live_events += 1
        return slot, seq

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        *,
        priority: int = EventPriority.NORMAL,
        label: str = "",
    ) -> EventHandle:
        """Schedule *callback* at absolute simulated time *time*."""
        if time < self._now:
            raise ClockError(
                f"cannot schedule event at {time:.9f}s before now={self._now:.9f}s"
            )
        priority = int(priority)
        slot, seq = self._push(time, callback, _NO_ARG, priority, label)
        # Direct slot writes instead of EventHandle.__init__: this runs
        # once per schedule_at/schedule_after call, and the extra Python
        # frame would be the single largest cost of scheduling.
        handle = EventHandle.__new__(EventHandle)
        handle._engine = self
        handle._slot = slot
        handle._gen = self._slot_gen[slot]
        handle.time = time
        handle.priority = priority
        handle.sequence = seq
        handle.label = label
        handle._cancelled = False
        return handle

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], Any],
        *,
        priority: int = EventPriority.NORMAL,
        label: str = "",
    ) -> EventHandle:
        """Schedule *callback* after *delay* seconds of simulated time."""
        if delay < 0:
            raise EventError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(
            self._now + delay, callback, priority=priority, label=label
        )

    def schedule_call_at(
        self,
        time: float,
        callback: Callable[..., Any],
        arg: Any = _NO_ARG,
        *,
        priority: int = EventPriority.NORMAL,
        label: str = "",
    ) -> None:
        """Fire-and-forget variant of :meth:`schedule_at`.

        Returns no handle (the event cannot be cancelled) and therefore
        allocates nothing beyond the heap tuple and a slab slot.  When
        *arg* is given the callback is invoked as ``callback(arg)``,
        which lets hot callers pass a bound method plus its argument
        instead of building a closure per event.
        """
        if time < self._now:
            raise ClockError(
                f"cannot schedule event at {time:.9f}s before now={self._now:.9f}s"
            )
        self._push(time, callback, arg, int(priority), label)

    def schedule_call_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        arg: Any = _NO_ARG,
        *,
        priority: int = EventPriority.NORMAL,
        label: str = "",
    ) -> None:
        """Fire-and-forget variant of :meth:`schedule_after`."""
        if delay < 0:
            raise EventError(f"delay must be >= 0, got {delay}")
        self._push(self._now + delay, callback, arg, int(priority), label)

    def schedule_recurring(
        self,
        interval: float,
        callback: Callable[[], Any],
        *,
        priority: int = EventPriority.TIMER,
        label: str = "",
        start_offset: Optional[float] = None,
    ) -> RecurringTimer:
        """Run *callback* every *interval* seconds until cancelled.

        Returns the engine-owned :class:`RecurringTimer`; call its
        ``cancel()`` method (or call the record itself, which aliases
        ``cancel`` for backward compatibility) to stop the recurrence.
        The first invocation happens at ``now + (start_offset or
        interval)``; after each firing the timer re-arms in place.
        """
        if interval <= 0:
            raise EventError(f"interval must be > 0, got {interval}")
        first_delay = interval if start_offset is None else start_offset
        if first_delay < 0:
            raise EventError(f"start_offset must be >= 0, got {start_offset}")

        timer = RecurringTimer(self, float(interval), callback, int(priority), label)
        slot = self._alloc_slot(timer, _NO_ARG, label, _TIMER)
        timer._slot = slot
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(
            self._queue, (self._now + first_delay, timer.priority, seq, slot)
        )
        self._live_events += 1
        return timer

    # -- execution ------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Returns ``False`` when empty."""
        queue = self._queue
        states = self._slot_state
        pop = heapq.heappop
        while queue:
            time, _priority, _seq, slot = pop(queue)
            state = states[slot]
            if state == _LIVE:
                if time < self._now:
                    raise SimulationError(
                        f"event {self._slot_label[slot]!r} scheduled in the "
                        f"past: {time} < {self._now}"
                    )
                self._now = time
                self._events_executed += 1
                self._live_events -= 1
                callback = self._slot_callback[slot]
                arg = self._slot_arg[slot]
                self._release_slot(slot)
                if arg is _NO_ARG:
                    callback()
                else:
                    callback(arg)
                return True
            if state == _TIMER:
                if time < self._now:
                    raise SimulationError(
                        f"event {self._slot_label[slot]!r} scheduled in the "
                        f"past: {time} < {self._now}"
                    )
                self._now = time
                self._events_executed += 1
                timer: RecurringTimer = self._slot_callback[slot]
                # The firing entry is consumed: retire the slot (counter
                # and state) *before* running the callback, so a raising
                # callback — or a cancel() from inside it — leaves the
                # engine consistent.  Re-arming flips it back.
                self._live_events -= 1
                states[slot] = _CANCELLED
                rearmed = False
                try:
                    timer.callback()
                    if not timer.cancelled and not self._stopped:
                        states[slot] = _TIMER
                        self._live_events += 1
                        seq = self._seq
                        self._seq = seq + 1
                        heapq.heappush(
                            queue,
                            (self._now + timer.interval,
                             timer.priority, seq, slot),
                        )
                        rearmed = True
                finally:
                    if not rearmed:
                        # Cancelled, stopped, or the callback raised: the
                        # timer is dead (exactly as the closure-based
                        # engine left it) and the slot is recycled.
                        timer._slot = None
                        self._release_slot(slot)
                return True
            # Cancelled: discard the entry and recycle its slot.
            self._release_slot(slot)
        return False

    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Run events until the queue drains or a stop condition is met.

        Parameters
        ----------
        until:
            Stop once the clock would advance past this time.  Events at
            exactly ``until`` still execute.
        max_events:
            Safety valve on the number of callbacks executed by this call
            (fast-forwarded callbacks count).
        stop_when:
            Predicate evaluated after every event — including between
            fast-forwarded events — the run stops when it returns ``True``.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        self._run_until = until
        self._run_stop_when = stop_when
        self._run_max_events = max_events
        self._run_executed = 0
        queue = self._queue
        states = self._slot_state
        try:
            while queue and not self._stopped:
                # Peek without popping so `until` leaves the event queued.
                head = queue[0]
                if states[head[3]] < _LIVE:
                    heapq.heappop(queue)
                    self._release_slot(head[3])
                    continue
                if until is not None and head[0] > until:
                    self._now = max(self._now, until)
                    break
                if not self.step():
                    break
                self._run_executed += 1
                if stop_when is not None and stop_when():
                    break
                if max_events is not None and self._run_executed >= max_events:
                    raise SimulationError(
                        f"run() exceeded max_events={max_events}; "
                        "the simulation is probably livelocked"
                    )
            else:
                if until is not None and not self._stopped:
                    self._now = max(self._now, until)
        finally:
            self._running = False
            self._run_until = None
            self._run_stop_when = None
            self._run_max_events = None
        return self._now

    def stop(self) -> None:
        """Request that the current :meth:`run` stops after this event."""
        self._stopped = True

    # -- fast-forward ----------------------------------------------------------
    def try_fast_forward(self, target_time: float) -> bool:
        """Advance the clock to *target_time* inline, skipping the heap.

        Granted only when executing an event at *target_time* through
        the heap could not possibly differ: the engine must be inside
        :meth:`run`, not stopped, *target_time* must not exceed the
        run's ``until`` bound, and every other live event must be
        *strictly* later (equal timestamps go through the heap so that
        priority/insertion ordering applies).  The run's ``stop_when``
        predicate and ``max_events`` budget are honoured at exactly the
        boundaries ``run()`` would check them, so a fast-forwarded run
        is observationally identical to a heap-dispatched one.

        On a grant the clock advances and the event counters tick; the
        caller then executes its callback inline.  On a refusal the
        caller must schedule normally.
        """
        if not self._fast_forward_enabled or not self._running or self._stopped:
            return False
        until = self._run_until
        if until is not None and target_time > until:
            return False
        stop_when = self._run_stop_when
        if stop_when is not None and stop_when():
            # Refuse the grant WITHOUT latching a stop: the predicate is
            # being evaluated mid-callback, before the caller has had a
            # chance to schedule its continuation, so a predicate that
            # inspects queue state (e.g. pending_events) may be only
            # transiently true here.  The caller falls back to normal
            # scheduling, and run() re-evaluates stop_when at the true
            # event boundary — with the continuation queued — which is
            # exactly the state heap dispatch evaluates it in.
            return False
        max_events = self._run_max_events
        if max_events is not None and self._run_executed + 1 >= max_events:
            # During a callback, _run_executed undercounts the executed
            # callbacks by exactly one: the hosting heap event is only
            # counted by run() after the callback returns.  Refusing at
            # +1 makes a fast-forwarding chain execute the same number
            # of callbacks as heap dispatch before run() raises its
            # canonical livelock error.
            return False
        if target_time < self._now:
            return False
        head_time = self.peek_time()
        if head_time is not None and head_time <= target_time:
            return False
        self._now = target_time
        self._events_executed += 1
        self._run_executed += 1
        return True

    # -- introspection ----------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if empty.

        Cancelled events at the head of the heap are lazily discarded
        (their slots recycled), so peeking is O(cancelled heads) instead
        of sorting the queue.
        """
        queue = self._queue
        states = self._slot_state
        while queue:
            head = queue[0]
            if states[head[3]] >= _LIVE:
                return head[0]
            heapq.heappop(queue)
            self._release_slot(head[3])
        return None

    def drain_labels(self) -> Iterable[str]:
        """Labels of all live queued events, in (time, priority, seq) order.

        Deterministic under the slab representation: the heap entries
        are plain tuples already keyed by ``(time, priority, seq)``, so
        sorting them yields exactly the order in which the events would
        fire.
        """
        states = self._slot_state
        labels = self._slot_label
        entries = [entry for entry in self._queue if states[entry[3]] >= _LIVE]
        entries.sort()
        return [labels[entry[3]] for entry in entries]
