"""Heap-based discrete-event simulation engine."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

from ..errors import ClockError, EventError, SimulationError
from .events import Event, EventPriority

__all__ = ["SimulationEngine"]


class SimulationEngine:
    """A minimal but complete discrete-event engine.

    The engine owns a monotonically non-decreasing clock (``now``) and a
    binary heap of :class:`~repro.sim.events.Event` records.  Components
    schedule plain callbacks; recurring activity (e.g. the hypervisor's
    one-second statistics VIRQ) uses :meth:`schedule_recurring`.

    The engine is single-threaded and deterministic: events at the same
    timestamp are ordered by priority then insertion order.
    """

    def __init__(self, *, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._running = False
        self._stopped = False
        self._events_executed = 0
        self._live_events = 0

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of callbacks run so far (for diagnostics and tests)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.

        Maintained as a counter — events notify the engine on
        cancellation — so reading it is O(1) rather than an O(n) scan.
        """
        return self._live_events

    def _note_cancellation(self) -> None:
        self._live_events -= 1

    # -- scheduling ------------------------------------------------------------
    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        *,
        priority: int = EventPriority.NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule *callback* at absolute simulated time *time*."""
        if time < self._now:
            raise ClockError(
                f"cannot schedule event at {time:.9f}s before now={self._now:.9f}s"
            )
        event = Event.create(time, callback, priority=priority, label=label)
        event.on_cancel = self._note_cancellation
        heapq.heappush(self._queue, event)
        self._live_events += 1
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], Any],
        *,
        priority: int = EventPriority.NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule *callback* after *delay* seconds of simulated time."""
        if delay < 0:
            raise EventError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(
            self._now + delay, callback, priority=priority, label=label
        )

    def schedule_recurring(
        self,
        interval: float,
        callback: Callable[[], Any],
        *,
        priority: int = EventPriority.TIMER,
        label: str = "",
        start_offset: Optional[float] = None,
    ) -> Callable[[], None]:
        """Run *callback* every *interval* seconds until cancelled.

        Returns a zero-argument function that cancels the recurrence.  The
        first invocation happens at ``now + (start_offset or interval)``.
        """
        if interval <= 0:
            raise EventError(f"interval must be > 0, got {interval}")
        first_delay = interval if start_offset is None else start_offset
        if first_delay < 0:
            raise EventError(f"start_offset must be >= 0, got {start_offset}")

        state: dict[str, Any] = {"cancelled": False, "event": None}

        def _fire() -> None:
            if state["cancelled"]:
                return
            callback()
            if not state["cancelled"] and not self._stopped:
                state["event"] = self.schedule_after(
                    interval, _fire, priority=priority, label=label
                )

        state["event"] = self.schedule_after(
            first_delay, _fire, priority=priority, label=label
        )

        def cancel() -> None:
            state["cancelled"] = True
            event = state["event"]
            if event is not None:
                event.cancel()

        return cancel

    # -- execution ------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Returns ``False`` when empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError(
                    f"event {event.label!r} scheduled in the past: "
                    f"{event.time} < {self._now}"
                )
            self._now = event.time
            self._events_executed += 1
            self._live_events -= 1
            event.on_cancel = None  # a late cancel() must not re-decrement
            event.callback()
            return True
        return False

    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Run events until the queue drains or a stop condition is met.

        Parameters
        ----------
        until:
            Stop once the clock would advance past this time.  Events at
            exactly ``until`` still execute.
        max_events:
            Safety valve on the number of callbacks executed by this call.
        stop_when:
            Predicate evaluated after every event; the run stops when it
            returns ``True``.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._queue and not self._stopped:
                # Peek without popping so `until` leaves the event queued.
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    self._now = max(self._now, until)
                    break
                if not self.step():
                    break
                executed += 1
                if stop_when is not None and stop_when():
                    break
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"run() exceeded max_events={max_events}; "
                        "the simulation is probably livelocked"
                    )
            else:
                if until is not None and not self._stopped:
                    self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Request that the current :meth:`run` stops after this event."""
        self._stopped = True

    # -- introspection ----------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if empty.

        Cancelled events at the head of the heap are lazily discarded,
        so peeking is O(cancelled heads) instead of sorting the queue.
        """
        queue = self._queue
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
        return queue[0].time if queue else None

    def drain_labels(self) -> Iterable[str]:
        """Labels of all live queued events (diagnostic helper)."""
        return [e.label for e in sorted(e for e in self._queue if not e.cancelled)]
