#!/usr/bin/env python3
"""Run a sweep through the distributed lease service, two ways.

Part 1 uses :class:`~repro.experiments.RemoteBackend`, which self-hosts
the HTTP job queue on loopback and drives two in-process workers over
real HTTP — the exact client/server code ``smartmem serve`` and
``smartmem worker`` run across machines. A deterministic chaos config
kills a worker mid-lease and drops/duplicates requests along the way,
and the sweep still finishes with fingerprints identical to a serial
run.

Part 2 does the same with real processes: it spawns ``smartmem serve``
plus two ``smartmem worker`` subprocesses against a results directory,
which is how you would run a sweep across actual hosts.

Run with::

    python examples/distributed_sweep.py [--scale 0.1] [--processes]
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments import (
    ChaosConfig,
    RemoteBackend,
    ResultStore,
    SerialBackend,
    SweepSpec,
    execute_point,
    run_sweep,
)
from repro.experiments.chaos import crashing_executor


def build_spec(scale: float) -> SweepSpec:
    return SweepSpec(
        scenarios=("usemem-scenario",),
        policies=("greedy", "no-tmem", "smart-alloc:P=2"),
        seeds=(1, 2),
        scales=(scale,),
    )


def in_process_demo(spec: SweepSpec) -> None:
    print(f"== RemoteBackend over loopback HTTP: {spec.describe()}")
    backend = RemoteBackend(
        num_workers=2,
        lease_expiry_s=2.0,
        backoff_base_s=0.05,
        # Deterministic chaos: one worker crash plus a lossy transport.
        chaos=ChaosConfig(seed=7, drop_request=0.05, drop_response=0.05,
                          duplicate=0.05),
        executor=crashing_executor(execute_point, crash_times=1, seed=3),
    )
    outcome = run_sweep(spec, backend=backend)
    reference = run_sweep(spec, backend=SerialBackend())
    for point, result in outcome.results.items():
        match = result.fingerprint() == reference.results[point].fingerprint()
        print(f"  {point}: {result.fingerprint()[:16]}... "
              f"{'== serial' if match else 'MISMATCH'}")
        assert match, f"fingerprint diverged for {point}"
    print(f"  ok: {len(outcome.results)} points, "
          f"{outcome.wall_clock_s:.1f}s wall clock, chaos survived\n")


def subprocess_demo(spec: SweepSpec, results_dir: Path) -> None:
    print(f"== smartmem serve + 2 smartmem worker processes: {spec.describe()}")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    url_file = results_dir / "server-url.txt"
    serve = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--scenario", spec.scenarios[0],
         *[arg for p in spec.policies for arg in ("--policy", p)],
         *[arg for s in spec.seeds for arg in ("--seed", str(s))],
         "--scale", str(spec.scales[0]),
         "--results-dir", str(results_dir),
         "--port", "0", "--url-file", str(url_file),
         "--lease-expiry", "10"],
        env=env,
    )
    try:
        deadline = time.time() + 30.0
        while not url_file.exists() and time.time() < deadline:
            if serve.poll() is not None:  # nothing to serve / early exit
                print("  server exited before granting leases "
                      f"(rc={serve.returncode})")
                return
            time.sleep(0.1)
        url = url_file.read_text().strip()
        print(f"  server on {url}")
        workers = [
            subprocess.Popen(
                [sys.executable, "-m", "repro", "worker", "--url", url,
                 "--id", f"example-worker-{i}"],
                env=env,
            )
            for i in range(2)
        ]
        for worker in workers:
            worker.wait(timeout=600)
        serve.wait(timeout=60)
        print(f"  server exit code: {serve.returncode} "
              f"({len(list(results_dir.glob('*.json')))} results archived)")
        store = ResultStore(results_dir)
        print(f"  store now resumes instantly: "
              f"{len(store.missing(spec.expand()))} points missing\n")
    finally:
        if serve.poll() is None:
            serve.send_signal(signal.SIGTERM)
            serve.wait(timeout=10)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--processes", action="store_true",
                        help="also run the real-subprocess demo")
    args = parser.parse_args()

    spec = build_spec(args.scale)
    in_process_demo(spec)
    if args.processes:
        with tempfile.TemporaryDirectory(prefix="smartmem-dist-") as tmp:
            subprocess_demo(spec, Path(tmp))
    return 0


if __name__ == "__main__":
    sys.exit(main())
