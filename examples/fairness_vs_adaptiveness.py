#!/usr/bin/env python3
"""Explore the paper's fairness-versus-adaptiveness trade-off.

Section V of the paper repeatedly observes a tension: the more responsive
a policy is to a VM's growing demand (adaptiveness), the further it can
drift from an even split of the tmem pool (fairness), and vice versa.
This example quantifies that trade-off on the heterogeneous Scenario 3 by
sweeping smart-alloc's P parameter and comparing against the static
policies: for every policy it reports the mean running time (lower =
better overall performance), the worst-case VM running time (the victim's
view) and the mean Jain fairness of the tmem shares.

Run with::

    python examples/fairness_vs_adaptiveness.py [--scale 0.5] [--seed 2019]
"""

from __future__ import annotations

import argparse

from repro import scenario_3
from repro.analysis.metrics import mean_fairness
from repro.analysis.report import format_table
from repro.experiments import ProcessPoolBackend, SerialBackend, SweepSpec, run_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = run in-process)")
    args = parser.parse_args()

    spec = scenario_3(scale=args.scale)
    print(f"Scenario: {spec.name} — {spec.description}\n")

    policies = (
        "greedy",
        "static-alloc",
        "reconf-static",
        "smart-alloc:P=0.75",
        "smart-alloc:P=2",
        "smart-alloc:P=4",
        "smart-alloc:P=8",
    )

    sweep = SweepSpec(
        scenarios=("scenario-3",),
        policies=policies,
        seeds=(args.seed,),
        scales=(args.scale,),
    )
    backend = (
        ProcessPoolBackend(max_workers=args.jobs) if args.jobs > 1
        else SerialBackend()
    )

    def progress(point, result, reused):
        print(f"running under {point.policy} ...")

    outcome = run_sweep(sweep, backend=backend, progress=progress)

    rows = []
    for policy, result in outcome.by_policy("scenario-3").items():
        runtimes = [run.duration_s for vm in result.vms.values() for run in vm.runs]
        rows.append(
            [
                policy,
                f"{result.mean_runtime_s():.1f}",
                f"{max(runtimes):.1f}",
                f"{result.runtime_of('VM3'):.1f}",
                f"{mean_fairness(result, skip_leading=10):.3f}",
                f"{result.target_updates}",
            ]
        )

    print()
    print(
        format_table(
            [
                "policy",
                "mean runtime (s)",
                "worst VM (s)",
                "VM3 (s)",
                "fairness",
                "target msgs",
            ],
            rows,
        )
    )
    print(
        "\nReading the table: static-alloc maximises fairness and protects the"
        "\nlate, large VM3; larger values of P make smart-alloc more adaptive,"
        "\nwhich favours the early VMs (VM1/VM2) at some cost to VM3 — the"
        "\ntrade-off the paper describes in Sections V-C and V-D."
    )


if __name__ == "__main__":
    main()
