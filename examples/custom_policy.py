#!/usr/bin/env python3
"""Write and evaluate a custom tmem management policy.

The paper positions SmarTmem as "a framework and baseline for future
development of more sophisticated tmem memory policies".  This example
shows how to use that framework: it implements a *proportional-demand*
policy (each VM's target is proportional to its recent failed-put volume,
smoothed with an exponential moving average), registers it under its own
name, and compares it against greedy and smart-alloc on Scenario 2.

Run with::

    python examples/custom_policy.py [--scale 0.5] [--seed 2019]
"""

from __future__ import annotations

import argparse
from typing import Dict, Optional, Tuple

from repro import run_scenario, scenario_2
from repro.analysis.metrics import mean_fairness
from repro.analysis.report import render_runtime_table
from repro.core.policy import PolicyDecision, TmemPolicy, register_policy
from repro.core.stats import MemStatsView, TargetVector
from repro.core.targets import equal_share, proportional_scale


@register_policy("proportional-demand")
class ProportionalDemandPolicy(TmemPolicy):
    """Targets proportional to an EMA of each VM's failed-put volume.

    Compared with smart-alloc (which nudges targets by a fixed percentage
    per interval), this policy recomputes the whole split every interval:
    VMs that swapped recently get a share proportional to how hard they
    swapped; VMs with no recent demand fall back towards a small floor so
    they can re-enter quickly.
    """

    def __init__(self, smoothing: float = 0.5, floor_fraction: float = 0.05) -> None:
        self._alpha = float(smoothing)
        self._floor = float(floor_fraction)
        self._demand_ema: Dict[int, float] = {}
        self._last: Optional[Tuple[Tuple[int, int], ...]] = None

    def reset(self) -> None:
        self._demand_ema.clear()
        self._last = None

    def decide(self, memstats: MemStatsView) -> PolicyDecision:
        if not memstats.vms:
            return PolicyDecision.no_change()
        # Exponentially smooth each VM's failed puts of the last interval.
        for vm in memstats.vms:
            previous = self._demand_ema.get(vm.vm_id, 0.0)
            self._demand_ema[vm.vm_id] = (
                self._alpha * vm.puts_failed + (1.0 - self._alpha) * previous
            )
        # Drop VMs that disappeared.
        live = set(memstats.vm_ids())
        for vm_id in list(self._demand_ema):
            if vm_id not in live:
                del self._demand_ema[vm_id]

        total = memstats.total_tmem
        floor = int(total * self._floor)
        demand_total = sum(self._demand_ema.values())
        if demand_total <= 0:
            targets = equal_share(sorted(live), total)
        else:
            raw = TargetVector(
                {vm_id: floor + int(d) for vm_id, d in self._demand_ema.items()}
            )
            targets = proportional_scale(raw, total)

        emitted = tuple(targets.items())
        if emitted == self._last:
            return PolicyDecision.no_change(note="proportional-demand: unchanged")
        self._last = emitted
        self.validate_targets(targets, memstats)
        return PolicyDecision.set_targets(targets, note="proportional-demand")

    def describe(self) -> str:
        return f"proportional-demand (EMA alpha={self._alpha}, floor={self._floor})"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=2019)
    args = parser.parse_args()

    spec = scenario_2(scale=args.scale)
    print(f"Scenario: {spec.name} — {spec.description}\n")

    policies = ["greedy", "smart-alloc:P=6", "proportional-demand"]
    results = {}
    for policy in policies:
        print(f"running under {policy} ...")
        results[policy] = run_scenario(spec, policy, seed=args.seed)

    print()
    print(render_runtime_table(results, title="Per-VM running times"))
    print("\nMean Jain fairness of tmem shares:")
    for policy, result in results.items():
        print(f"  {policy:22s} {mean_fairness(result):.3f} "
              f"(target updates: {result.target_updates})")


if __name__ == "__main__":
    main()
