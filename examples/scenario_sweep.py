#!/usr/bin/env python3
"""Reproduce the paper's full evaluation sweep (Figures 3, 5, 7 and 9).

Runs every Table II scenario under every policy the paper evaluates and
prints, per scenario, the running-time table, the improvement of the best
smart-alloc configuration over greedy and no-tmem, and the mean Jain
fairness of the tmem shares.

This is the programmatic equivalent of ``pytest benchmarks/``; it is
useful when you want the numbers without the benchmarking machinery, e.g.
to regenerate EXPERIMENTS.md after changing a policy.

The sweep is driven by :mod:`repro.experiments`: pass ``--jobs N`` to run
the (scenario, policy) points across N worker processes, and
``--results-dir DIR`` to archive per-point JSON results (re-running then
resumes from the archive instead of re-simulating).

Run with::

    python examples/scenario_sweep.py [--scale 0.5] [--scenario scenario-2]
        [--jobs 4] [--results-dir sweep-results]
"""

from __future__ import annotations

import argparse
import sys

from repro import PAPER_POLICIES, all_scenarios
from repro.analysis.metrics import improvement_percent, mean_fairness
from repro.analysis.report import render_runtime_table
from repro.experiments import (
    ProcessPoolBackend,
    ResultStore,
    SerialBackend,
    SweepSpec,
    run_sweep,
)

#: The smart-alloc setting the paper highlights for each scenario.
BEST_SMART = {
    "scenario-1": "smart-alloc:P=0.75",
    "scenario-2": "smart-alloc:P=6",
    "usemem-scenario": "smart-alloc:P=2",
    "scenario-3": "smart-alloc:P=4",
}


def report_one(name, spec, results):
    """Print one scenario's tables from its {policy: result} mapping."""
    print("=" * 78)
    print(f"{name}: {spec.description}")
    print("=" * 78)
    print(render_runtime_table(results))

    best = BEST_SMART.get(name, "smart-alloc:P=2")
    if best in results:
        for baseline in ("greedy", "no-tmem"):
            if baseline not in results:
                continue
            gains = [
                improvement_percent(
                    results[baseline].runtime_of(vm, run.run_index),
                    results[best].runtime_of(vm, run.run_index),
                )
                for vm in results[baseline].vm_names()
                for run in results[baseline].vm(vm).runs
            ]
            print(f"\n{best} vs {baseline}: best {max(gains):+.1f}%, "
                  f"worst {min(gains):+.1f}%")

    print("\nMean Jain fairness of tmem shares:")
    for policy, result in results.items():
        if policy == "no-tmem":
            continue
        print(f"  {policy:22s} {mean_fairness(result):.3f}")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5,
                        help="size scale factor (1.0 = paper sizes)")
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--scenario", action="append", default=None,
                        help="restrict to one or more scenarios (repeatable)")
    parser.add_argument("--policy", action="append", default=None,
                        help="restrict to one or more policies (repeatable)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = run in-process)")
    parser.add_argument("--results-dir", default=None,
                        help="archive per-point JSON results here and resume "
                             "from them on re-runs")
    args = parser.parse_args()

    scenarios = all_scenarios(scale=args.scale)
    if args.scenario:
        scenarios = {k: v for k, v in scenarios.items() if k in set(args.scenario)}
    policies = tuple(args.policy) if args.policy else tuple(PAPER_POLICIES)

    spec = SweepSpec(
        scenarios=tuple(scenarios),
        policies=policies,
        seeds=(args.seed,),
        scales=(args.scale,),
    )
    backend = (
        ProcessPoolBackend(max_workers=args.jobs) if args.jobs > 1
        else SerialBackend()
    )
    store = ResultStore(args.results_dir) if args.results_dir else None

    def progress(point, result, reused):
        verb = "reused" if reused else "ran"
        print(f"  {verb} {point.scenario} / {point.policy:22s} "
              f"in {result.wall_clock_s:5.1f}s wall clock", file=sys.stderr)

    outcome = run_sweep(spec, backend=backend, store=store, progress=progress)

    for name, scenario_spec in scenarios.items():
        report_one(name, scenario_spec, outcome.by_policy(name))


if __name__ == "__main__":
    main()
