#!/usr/bin/env python3
"""Quickstart: run one paper scenario under three policies and compare.

This is the smallest end-to-end use of the library: build Scenario 1
(three 1 GB VMs running in-memory-analytics twice over 1 GB of tmem),
run it under the no-tmem baseline, the default greedy allocator and
SmarTmem's smart-alloc policy, and print the per-VM running times and the
improvement of smart-alloc over both baselines.

Run with::

    python examples/quickstart.py [--scale 0.25] [--seed 2019]

The default scale (0.25) keeps the run under a few seconds; use
``--scale 1.0`` for the paper-sized configuration.

Going further:

* Multi-node runs and **sharded execution** (one engine per node group
  in worker processes, ``smartmem run shard:nodes=4 --shards auto``) —
  see README.md "Architecture: Node and Cluster layers" / "Sharded
  execution" and :func:`repro.cluster.run_scenario_sharded`.
* The ``relaxed`` access engine for throughput-over-bit-identity runs —
  see PERFORMANCE.md "The relaxed engine and aggregate pinning".
"""

from __future__ import annotations

import argparse

from repro import run_scenario, scenario_1
from repro.analysis.metrics import improvement_percent
from repro.analysis.report import render_runtime_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="size scale factor (1.0 = paper sizes)")
    parser.add_argument("--seed", type=int, default=2019)
    args = parser.parse_args()

    spec = scenario_1(scale=args.scale)
    print(f"Scenario: {spec.name} — {spec.description}")
    print(f"Scale: {args.scale}  (tmem pool = {spec.tmem_mb} MB)\n")

    policies = ["no-tmem", "greedy", "smart-alloc:P=0.75"]
    results = {}
    for policy in policies:
        print(f"running under {policy} ...")
        results[policy] = run_scenario(spec, policy, seed=args.seed)

    print()
    print(render_runtime_table(results, title="Per-VM running times"))

    smart = results["smart-alloc:P=0.75"]
    for baseline in ("no-tmem", "greedy"):
        base = results[baseline]
        gains = [
            improvement_percent(base.runtime_of(vm, run.run_index),
                                smart.runtime_of(vm, run.run_index))
            for vm in base.vm_names()
            for run in base.vm(vm).runs
        ]
        print(f"\nsmart-alloc(0.75%) vs {baseline}: "
              f"best {max(gains):+.1f}%, worst {min(gains):+.1f}%")

    print("\nDisk faults avoided by tmem (sum over all VMs):")
    for policy, result in results.items():
        print(f"  {policy:20s} disk faults = {result.total_disk_faults():6d}   "
              f"tmem faults = {result.total_tmem_faults():6d}")


if __name__ == "__main__":
    main()
