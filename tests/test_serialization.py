"""Result serialization: JSON round-trips, NaN handling, fingerprints."""

import json
import math

import pytest

from repro import run_scenario, usemem_scenario
from repro.errors import AnalysisError
from repro.scenarios.results import RunResult, ScenarioResult, VmResult
from repro.serialize import decode_float, encode_float
from repro.sim.trace import TraceRecorder, TraceSeries


@pytest.fixture(scope="module")
def result() -> ScenarioResult:
    """One real scenario result (usemem exercises stop triggers/phases)."""
    return run_scenario(usemem_scenario(scale=0.1), "smart-alloc:P=2", seed=7)


class TestFloatEncoding:
    def test_finite_floats_pass_through(self):
        assert encode_float(1.5) == 1.5
        assert decode_float(1.5) == 1.5

    def test_nan_encodes_to_none(self):
        assert encode_float(float("nan")) is None
        assert math.isnan(decode_float(None))

    def test_infinities_encode_to_strings(self):
        assert encode_float(float("inf")) == "Infinity"
        assert encode_float(float("-inf")) == "-Infinity"
        assert decode_float("Infinity") == float("inf")
        assert decode_float("-Infinity") == float("-inf")

    def test_floats_survive_json_exactly(self):
        values = [0.1, 1 / 3, 1e-300, 123456.789]
        for value in values:
            assert json.loads(json.dumps(encode_float(value))) == value


class TestTraceSerialization:
    def test_series_round_trip(self):
        series = TraceSeries("tmem_used/vm1")
        for t, v in [(0.0, 0.0), (1.0, 42.0), (2.5, 17.0)]:
            series.append(t, v)
        data = json.loads(json.dumps(series.to_dict(), allow_nan=False))
        restored = TraceSeries.from_dict(data)
        assert restored.name == series.name
        assert restored.as_tuples() == series.as_tuples()

    def test_recorder_round_trip(self):
        recorder = TraceRecorder()
        recorder.record("a", 0.0, 1.0)
        recorder.record("a", 1.0, 2.0)
        recorder.record("b", 0.5, 3.0)
        restored = TraceRecorder.from_dict(recorder.to_dict())
        assert list(restored.names()) == ["a", "b"]
        assert restored.get("a").as_tuples() == recorder.get("a").as_tuples()

    def test_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            TraceSeries.from_dict({"name": "x", "times": [0.0], "values": []})


class TestTraceStorageBackend:
    """The array('d') sample buffers must not change the JSON output."""

    #: Canonical serialized bytes of the series built below, recorded
    #: when samples were stored in plain Python lists.  The storage
    #: backend is free to change; these bytes are not.
    PINNED_JSON = (
        '{"name": "pin", "times": [0.0, 0.5, 1.5, 2.25], '
        '"values": [1.0, -2.5, 1e-300, 123456.789]}'
    )

    def _series(self) -> TraceSeries:
        series = TraceSeries("pin")
        for t, v in [(0.0, 1.0), (0.5, -2.5), (1.5, 1e-300), (2.25, 123456.789)]:
            series.append(t, v)
        return series

    def test_serialization_bytes_are_pinned(self):
        assert json.dumps(self._series().to_dict()) == self.PINNED_JSON

    def test_round_trip_preserves_bytes(self):
        restored = TraceSeries.from_dict(json.loads(self.PINNED_JSON))
        assert json.dumps(restored.to_dict()) == self.PINNED_JSON
        assert restored.as_tuples() == self._series().as_tuples()

    def test_buffers_keep_appending_after_numpy_views(self):
        """Taking .times/.values must not pin the buffer (BufferError)."""
        series = self._series()
        first = series.times
        series.append(3.0, 9.0)
        assert len(series) == 5
        assert first.shape == (4,)  # the view is a snapshot copy

    def test_nonfinite_values_round_trip(self):
        series = TraceSeries("nf")
        series.append(0.0, float("inf"))
        series.append(1.0, float("nan"))
        data = json.loads(json.dumps(series.to_dict()))
        restored = TraceSeries.from_dict(data)
        assert restored.values[0] == float("inf")
        assert math.isnan(restored.values[1])


class TestRunResultSerialization:
    def test_nan_end_time_round_trips(self):
        run = RunResult(
            vm_name="VM1",
            workload_name="usemem",
            run_index=0,
            start_time_s=0.0,
            end_time_s=float("nan"),
            duration_s=12.5,
            stopped_early=True,
            phase_durations={"alloc-128MB": 3.0},
            phase_order=("alloc-128MB",),
        )
        data = json.loads(json.dumps(run.to_dict(), allow_nan=False))
        assert data["end_time_s"] is None
        restored = RunResult.from_dict(data)
        assert math.isnan(restored.end_time_s)
        assert restored.duration_s == run.duration_s
        assert restored.phase_durations == dict(run.phase_durations)
        assert restored.phase_order == tuple(run.phase_order)


class TestScenarioResultSerialization:
    def test_round_trip_dict_equality(self, result):
        data = result.to_dict()
        # Strict JSON: must survive dumps(allow_nan=False) -> loads.
        restored = ScenarioResult.from_dict(
            json.loads(json.dumps(data, allow_nan=False))
        )
        assert restored.to_dict() == data

    def test_round_trip_preserves_accessors(self, result):
        restored = ScenarioResult.from_dict(result.to_dict())
        assert restored.scenario_name == result.scenario_name
        assert restored.policy_spec == result.policy_spec
        assert restored.seed == result.seed
        assert restored.runtimes() == result.runtimes()
        assert restored.mean_runtime_s() == result.mean_runtime_s()
        for vm_name in result.vm_names():
            original = result.tmem_usage_series(vm_name)
            loaded = restored.tmem_usage_series(vm_name)
            assert loaded.as_tuples() == original.as_tuples()

    def test_vm_results_equal_after_round_trip(self, result):
        restored = ScenarioResult.from_dict(result.to_dict())
        for name, vm in result.vms.items():
            assert isinstance(restored.vms[name], VmResult)
            assert restored.vms[name] == vm

    def test_fingerprint_stable_across_round_trip(self, result):
        restored = ScenarioResult.from_dict(result.to_dict())
        assert restored.fingerprint() == result.fingerprint()

    def test_fingerprint_ignores_wall_clock(self, result):
        restored = ScenarioResult.from_dict(result.to_dict())
        restored.wall_clock_s = result.wall_clock_s + 123.0
        assert restored.fingerprint() == result.fingerprint()

    def test_fingerprint_sensitive_to_payload(self, result):
        restored = ScenarioResult.from_dict(result.to_dict())
        restored.target_updates += 1
        assert restored.fingerprint() != result.fingerprint()

    def test_identical_reruns_have_identical_fingerprints(self, result):
        again = run_scenario(usemem_scenario(scale=0.1), "smart-alloc:P=2", seed=7)
        assert again.fingerprint() == result.fingerprint()
