"""Tests for the Node/Cluster layering, remote-tmem spill and coordination.

The three load-bearing guarantees of the cluster refactor:

1. **Single-node identity** — a cluster of one node is bit-identical
   (``ScenarioResult.fingerprint()``) to the classic single-host runner,
   for every paper policy and the no-tmem baseline.
2. **Remote spill** — on a multi-node topology, overflow puts reach peer
   pools instead of the swap disk, versions stay consistent across the
   interconnect, every invariant holds on every node, and the spill is
   visible in the traces.
3. **Engine equivalence survives the cluster** — the scalar and batched
   guest engines stay bit-identical even when bursts spill remotely.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.cluster import clusterize
from repro.config import GuestConfig, SimulationConfig
from repro.core.coordinator import (
    NodeTmemView,
    available_coordinators,
    create_coordinator,
)
from repro.core.policy import available_policies
from repro.errors import ClusterError, ScenarioError
from repro.scenarios.registry import scenario_by_name
from repro.scenarios.results import ScenarioResult
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ClusterTopology, NodeSpec
from repro.units import SCENARIO_UNITS

#: Every policy evaluated in the paper's figures, plus the baseline.
ALL_POLICIES = ("no-tmem", "greedy", "static-alloc", "reconf-static",
                "smart-alloc:P=2")


def single_node_topology(spec, **kwargs) -> ClusterTopology:
    """Wrap a single-host spec's VMs in a one-node topology."""
    return ClusterTopology(
        nodes=(
            NodeSpec(
                name="node1",
                vm_names=spec.vm_names(),
                tmem_mb=spec.tmem_mb,
                host_memory_mb=spec.host_memory_mb,
            ),
        ),
        **kwargs,
    )


class TestSingleNodeIdentity:
    """A one-node cluster reproduces the single-host runner bit for bit."""

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_usemem_fingerprint_identical(self, policy):
        spec = scenario_by_name("usemem-scenario", scale=0.1)
        clustered_spec = replace(spec, topology=single_node_topology(spec))

        single = run_scenario(spec, policy, seed=11)
        clustered = run_scenario(clustered_spec, policy, seed=11)

        assert clustered.cluster is not None
        # The cluster section is *extra* information; everything the
        # single-host runner produced must be byte-identical.
        clustered.cluster = None
        assert single.fingerprint() == clustered.fingerprint()

    def test_scenario1_fingerprint_identical_with_coordinator(self):
        """Even an active coordinator is inert on a one-node cluster."""
        spec = scenario_by_name("scenario-1", scale=0.1)
        clustered_spec = replace(
            spec,
            topology=single_node_topology(spec, coordinator="equal-share"),
        )
        single = run_scenario(spec, "smart-alloc:P=2", seed=3)
        clustered = run_scenario(clustered_spec, "smart-alloc:P=2", seed=3)
        clustered.cluster = None
        assert single.fingerprint() == clustered.fingerprint()

    def test_single_host_result_has_no_cluster_section(self):
        spec = scenario_by_name("usemem-scenario", scale=0.1)
        result = run_scenario(spec, "greedy", seed=1)
        assert result.cluster is None
        assert "cluster" not in result.to_dict()


class TestRemoteSpill:
    @pytest.fixture(scope="class")
    def hotnode_result(self):
        spec = scenario_by_name("hotnode:nodes=3", scale=0.08)
        return run_scenario(spec, "greedy", seed=5)

    def test_three_node_scenario_spills(self, hotnode_result):
        nodes = hotnode_result.cluster["nodes"]
        assert hotnode_result.cluster["topology"]["node_count"] == 3
        hot = nodes["hot"]
        assert hot["spilled_puts"] > 0
        assert hot["remote_gets"] > 0
        # The idle peers never overflow, so they never spill.
        assert nodes["node2"]["spilled_puts"] == 0
        assert nodes["node3"]["spilled_puts"] == 0

    def test_spill_is_visible_in_traces(self, hotnode_result):
        trace = hotnode_result.trace
        assert "remote_spill/hot" in trace
        series = trace.get("remote_spill/hot")
        assert series.max() > 0
        # Cumulative counters are non-decreasing.
        values = series.values
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_interconnect_accounting(self, hotnode_result):
        moved = hotnode_result.cluster["interconnect_pages_moved"]
        nodes = hotnode_result.cluster["nodes"]
        spilled = sum(info["spilled_puts"] for info in nodes.values())
        fetched = sum(info["remote_gets"] for info in nodes.values())
        assert moved == spilled + fetched

    def test_spill_avoids_disk_io(self):
        """With spill on, the hot node's overflow stays off the disk."""
        spec = scenario_by_name("hotnode:nodes=2", scale=0.08)
        no_spill = replace(
            spec,
            topology=replace(spec.topology, remote_spill=False,
                             coordinator=None),
        )
        with_spill = run_scenario(spec, "greedy", seed=9)
        without = run_scenario(no_spill, "greedy", seed=9)

        def disk_evictions(result: ScenarioResult) -> int:
            return sum(vm.evictions_to_disk for vm in result.vms.values())

        assert disk_evictions(with_spill) < disk_evictions(without)
        assert with_spill.mean_runtime_s() <= without.mean_runtime_s()

    def test_scalar_and_batched_engines_identical_under_spill(self):
        spec = scenario_by_name("hotnode:nodes=3", scale=0.06)
        fingerprints = {}
        for engine in ("scalar", "batched"):
            config = SimulationConfig(
                units=SCENARIO_UNITS,
                guest=GuestConfig(access_engine=engine),
            )
            result = run_scenario(spec, "greedy", config=config, seed=13)
            fingerprints[engine] = result.fingerprint()
        assert fingerprints["scalar"] == fingerprints["batched"]

    def test_spill_client_is_invisible_to_per_node_policies(self):
        """The spill pseudo-domain must not dilute policy target shares.

        Under static-alloc each node's pool is split over the VMs the
        Memory Manager *sees*; the cluster-internal spill client is
        accounted for invariants but hidden from the sampler, so a
        2-VM node splits its pool in half, not in thirds, and the spill
        client never receives an mm_target (spill admission stays
        bounded by free frames only).
        """
        from repro.scenarios.runner import ScenarioRunner

        spec = scenario_by_name("cluster:nodes=2,vms_per_node=2", scale=0.05)
        runner = ScenarioRunner(spec, "static-alloc", seed=2)
        result = runner.run()
        assert result.cluster is not None
        for node in runner.nodes:
            accounting = node.hypervisor.accounting
            internal = [
                acc for acc in accounting.accounts() if acc.internal
            ]
            assert len(internal) == 1  # the spill client exists...
            assert internal[0].mm_target == -1  # ...but was never targeted
            assert accounting.vm_count == 2  # and is not counted as a VM
            # Every guest's final target is an equal half-split of the
            # node's pool (static-alloc), not a third.
            snapshot = node.hypervisor.sampler.history[-1]
            assert snapshot.vm_count == 2
            targets = {
                sample.vm_id: sample.mm_target for sample in snapshot.vms
            }
            assert len(targets) == 2
            total = node.total_tmem_pages
            assert sum(targets.values()) == total
            assert max(targets.values()) - min(targets.values()) <= 1

    def test_cluster_result_serialization_round_trip(self, hotnode_result):
        data = hotnode_result.to_dict()
        assert "cluster" in data
        restored = ScenarioResult.from_dict(data)
        assert restored.cluster == hotnode_result.cluster
        assert restored.fingerprint() == hotnode_result.fingerprint()


class TestClusterFamilies:
    @pytest.mark.parametrize("policy", list(available_policies()) + ["no-tmem"])
    @pytest.mark.parametrize(
        "family", ["cluster:nodes=2,vms_per_node=1", "hotnode:nodes=2"]
    )
    def test_families_run_under_every_policy(self, family, policy):
        spec = scenario_by_name(family, scale=0.05)
        result = run_scenario(spec, policy, seed=2)
        assert result.cluster is not None
        assert all(vm.runs for vm in result.vms.values())
        assert result.simulated_duration_s > 0

    def test_cluster_families_listed_by_cli(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cluster" in out and "hotnode" in out
        # The policy spec syntax and the coordinators are listed too.
        assert "smart-alloc:P=<percent>" in out
        assert "equal-share" in out and "pressure-prop" in out

    def test_topology_must_place_every_vm(self):
        spec = scenario_by_name("scenario-1", scale=0.1)
        with pytest.raises(ScenarioError):
            replace(
                spec,
                topology=ClusterTopology(
                    nodes=(
                        NodeSpec(name="n1", vm_names=("VM1",), tmem_mb=64),
                    )
                ),
            )

    def test_clusterize_replicates_and_prefixes(self):
        spec = scenario_by_name("usemem-scenario", scale=0.1)
        clustered = clusterize(spec, 2, coordinator="equal-share")
        assert len(clustered.vms) == 2 * len(spec.vms)
        assert clustered.topology is not None
        assert clustered.topology.node_names() == ("node1", "node2")
        assert "n1.VM1" in clustered.vm_names()
        # Phase triggers are replicated per node; the stop trigger keeps
        # a single cluster-wide watcher.
        assert len(clustered.phase_triggers) == 2 * len(spec.phase_triggers)
        assert clustered.stop_trigger.watch_vm == "n1.VM3"
        with pytest.raises(ClusterError):
            clusterize(clustered, 2)


class TestCoordinator:
    def view(self, name, capacity, *, used=0, failed=0, spilled=0):
        return NodeTmemView(
            name=name,
            capacity_pages=capacity,
            used_pages=used,
            free_pages=capacity - used,
            failed_puts=failed,
            spilled_puts=spilled,
            vm_count=1,
        )

    def test_registry_contents(self):
        assert "equal-share" in available_coordinators()
        assert "pressure-prop" in available_coordinators()

    def test_equal_share_partitions_exactly(self):
        coordinator = create_coordinator("equal-share")
        views = [self.view("a", 100), self.view("b", 401), self.view("c", 0)]
        desired = coordinator.rebalance(views)
        assert sum(desired.values()) == 501
        assert max(desired.values()) - min(desired.values()) <= 1
        # Unchanged membership -> no re-emission.
        assert coordinator.rebalance(
            [self.view("a", 167), self.view("b", 167), self.view("c", 167)]
        ) is None

    def test_pressure_prop_moves_towards_pressure(self):
        coordinator = create_coordinator("pressure-prop:percent=50")
        views = [
            self.view("hot", 100, failed=500, spilled=300),
            self.view("idle", 500),
        ]
        desired = coordinator.rebalance(views)
        assert desired is not None
        assert sum(desired.values()) == 600
        assert desired["hot"] > 100
        assert desired["idle"] < 500

    def test_pressure_prop_parameter_validation(self):
        from repro.errors import PolicyError

        with pytest.raises(PolicyError):
            create_coordinator("pressure-prop:percent=0")
        with pytest.raises(PolicyError):
            create_coordinator("pressure-prop:floor=1.5")

    def test_unknown_coordinator_rejected(self):
        from repro.errors import UnknownPolicyError

        with pytest.raises(UnknownPolicyError):
            create_coordinator("does-not-exist")

    def test_hotnode_coordination_grows_the_hot_pool(self):
        """End to end: pressure-proportional coordination chases the load."""
        spec = scenario_by_name("hotnode:nodes=3", scale=0.08)
        result = run_scenario(spec, "greedy", seed=5)
        units = SCENARIO_UNITS
        initial_hot = units.pages_from_mib(spec.topology.nodes[0].tmem_mb)
        initial_peer = units.pages_from_mib(spec.topology.nodes[1].tmem_mb)
        nodes = result.cluster["nodes"]
        assert result.cluster["capacity_moves"] > 0
        assert nodes["hot"]["tmem_pages_end"] > initial_hot
        assert nodes["node2"]["tmem_pages_end"] < initial_peer
        assert "tmem_capacity/hot" in result.trace

    def test_total_capacity_is_conserved(self):
        spec = scenario_by_name("hotnode:nodes=2", scale=0.08)
        result = run_scenario(spec, "greedy", seed=5)
        units = SCENARIO_UNITS
        initial = sum(
            units.pages_from_mib(node.tmem_mb)
            for node in spec.topology.nodes
        )
        final = sum(
            info["tmem_pages_end"]
            for info in result.cluster["nodes"].values()
        )
        # Rebalancing is transactional: grows are funded exclusively by
        # shrinks, so the cluster's enabled capacity is conserved exactly.
        assert final == initial


class TestClusterAnalysis:
    def test_node_summaries_and_rollup(self):
        from repro.analysis.cluster import (
            cluster_rollup,
            node_summaries,
            render_cluster_table,
        )

        spec = scenario_by_name("hotnode:nodes=2", scale=0.08)
        result = run_scenario(spec, "greedy", seed=5)
        summaries = node_summaries(result)
        assert [s.node_name for s in summaries] == ["hot", "node2"]
        assert summaries[0].spilled_puts > 0
        rollup = cluster_rollup(result)
        assert rollup["node_count"] == 2
        assert 0 < rollup["spill_ratio"] <= 1
        table = render_cluster_table(result, title="per-node")
        assert "hot" in table and "(cluster)" in table

    def test_single_host_result_rejected(self):
        from repro.analysis.cluster import node_summaries
        from repro.errors import AnalysisError

        spec = scenario_by_name("usemem-scenario", scale=0.1)
        result = run_scenario(spec, "greedy", seed=1)
        with pytest.raises(AnalysisError):
            node_summaries(result)


class TestClusterCli:
    def test_run_with_nodes_flag(self, capsys):
        from repro.cli import main

        code = main([
            "run", "usemem-scenario",
            "--scale", "0.08",
            "--seed", "5",
            "--nodes", "2",
            "--policy", "greedy",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "usemem-scenario@2nodes" in out
        assert "Per-node breakdown" in out
        assert "(cluster)" in out

    def test_nodes_flag_rejected_on_cluster_native_scenario(self, capsys):
        from repro.cli import main

        code = main([
            "run", "hotnode:nodes=2", "--nodes", "3", "--policy", "greedy",
        ])
        assert code == 2
