"""Integration tests: full scenario runs at reduced scale."""

import pytest

from repro.analysis.metrics import mean_fairness
from repro.errors import ScenarioError
from repro.scenarios.library import scenario_1, scenario_2, usemem_scenario
from repro.scenarios.runner import NO_TMEM_POLICY, ScenarioRunner, run_scenario
from repro.scenarios.spec import ScenarioSpec, VMSpec, WorkloadSpec

#: Small scale keeps each scenario run well under a second.
SCALE = 0.1
SEED = 7


@pytest.fixture(scope="module")
def s1_greedy():
    return run_scenario(scenario_1(scale=SCALE), "greedy", seed=SEED)


@pytest.fixture(scope="module")
def s1_no_tmem():
    return run_scenario(scenario_1(scale=SCALE), NO_TMEM_POLICY, seed=SEED)


@pytest.fixture(scope="module")
def s1_smart():
    return run_scenario(scenario_1(scale=SCALE), "smart-alloc:P=6", seed=SEED)


class TestScenarioResults:
    def test_every_vm_finishes_both_runs(self, s1_greedy):
        for name in ("VM1", "VM2", "VM3"):
            runs = s1_greedy.vm(name).runs
            assert len(runs) == 2
            assert all(run.duration_s > 0 for run in runs)

    def test_simulated_duration_covers_all_runs(self, s1_greedy):
        last_end = max(run.end_time_s for vm in s1_greedy.vms.values() for run in vm.runs)
        assert s1_greedy.simulated_duration_s >= last_end

    def test_snapshots_taken_every_second(self, s1_greedy):
        assert s1_greedy.snapshots >= int(s1_greedy.simulated_duration_s) - 1

    def test_traces_exist_for_every_vm(self, s1_greedy):
        for name in s1_greedy.vm_names():
            series = s1_greedy.tmem_usage_series(name)
            assert len(series) > 0
            assert series.values.min() >= 0

    def test_runtimes_accessor(self, s1_greedy):
        runtimes = s1_greedy.runtimes()
        assert set(runtimes) == {"VM1", "VM2", "VM3"}
        assert all(len(v) == 2 for v in runtimes.values())
        assert s1_greedy.runtime_of("VM1", 0) == runtimes["VM1"][0]

    def test_unknown_vm_rejected(self, s1_greedy):
        with pytest.raises(Exception):
            s1_greedy.vm("VM99")

    def test_greedy_never_updates_targets(self, s1_greedy):
        assert s1_greedy.target_updates == 0

    def test_seed_reproducibility(self):
        spec = scenario_1(scale=SCALE)
        a = run_scenario(spec, "greedy", seed=3)
        b = run_scenario(spec, "greedy", seed=3)
        assert a.runtimes() == b.runtimes()

    def test_different_seeds_differ(self):
        spec = scenario_1(scale=SCALE)
        a = run_scenario(spec, "greedy", seed=3)
        b = run_scenario(spec, "greedy", seed=4)
        assert a.runtimes() != b.runtimes()


class TestPolicyEffects:
    def test_no_tmem_is_slowest(self, s1_greedy, s1_no_tmem, s1_smart):
        """The paper's headline: tmem policies beat the no-tmem baseline."""
        assert s1_no_tmem.mean_runtime_s() > s1_greedy.mean_runtime_s()
        assert s1_no_tmem.mean_runtime_s() > s1_smart.mean_runtime_s()

    def test_no_tmem_vm_uses_no_tmem(self, s1_no_tmem):
        assert s1_no_tmem.total_tmem_pages == 0
        for name in s1_no_tmem.vm_names():
            assert s1_no_tmem.vm(name).faults_from_tmem == 0
            assert s1_no_tmem.vm(name).faults_from_disk > 0

    def test_tmem_policies_absorb_most_faults(self, s1_greedy):
        assert s1_greedy.total_tmem_faults() > s1_greedy.total_disk_faults()

    def test_smart_alloc_sends_target_updates(self, s1_smart):
        assert s1_smart.target_updates > 0

    def test_smart_alloc_targets_never_exceed_pool(self, s1_smart):
        total = s1_smart.total_tmem_pages
        for name in s1_smart.vm_names():
            target = s1_smart.target_series(name)
            if target is not None and len(target):
                assert target.values.max() <= total

    def test_tmem_usage_never_exceeds_pool(self, s1_greedy):
        names = list(s1_greedy.vm_names())
        series = [s1_greedy.tmem_usage_series(n) for n in names]
        n = min(len(s) for s in series)
        for i in range(n):
            assert sum(s.values[i] for s in series) <= s1_greedy.total_tmem_pages

    def test_static_alloc_enforces_equal_shares(self):
        result = run_scenario(scenario_1(scale=SCALE), "static-alloc", seed=SEED)
        third = result.total_tmem_pages // 3
        for name in result.vm_names():
            usage = result.tmem_usage_series(name)
            assert usage.values.max() <= third + 1

    def test_greedy_starves_the_late_vm_in_scenario_2(self):
        """Figure 6(a): VM3 cannot obtain a fair share under greedy.

        Scenario 2 staggers VM3 by a fixed 30 s, so the scale must be large
        enough for the VM1/VM2 runs to still be active when VM3 arrives.
        """
        result = run_scenario(scenario_2(scale=0.25), "greedy", seed=SEED)
        assert result.vm("VM3").faults_from_disk > result.vm("VM1").faults_from_disk
        assert result.vm("VM3").failed_tmem_puts > result.vm("VM1").failed_tmem_puts

    def test_smart_alloc_is_fairer_than_greedy_in_scenario_2(self):
        greedy = run_scenario(scenario_2(scale=0.25), "greedy", seed=SEED)
        smart = run_scenario(scenario_2(scale=0.25), "smart-alloc:P=6", seed=SEED)
        # Compare fairness over the window where all three VMs are active.
        skip = 35  # the first ~35 samples cover the staggered start
        assert mean_fairness(smart, skip_leading=skip) >= mean_fairness(
            greedy, skip_leading=skip
        ) - 0.05


class TestUsememTriggers:
    @pytest.fixture(scope="class")
    def usemem_result(self):
        return run_scenario(usemem_scenario(scale=0.25), "greedy", seed=SEED)

    def test_vm3_starts_only_after_trigger(self, usemem_result):
        vm1_start = usemem_result.vm("VM1").runs[0].start_time_s
        vm3_start = usemem_result.vm("VM3").runs[0].start_time_s
        assert vm1_start == pytest.approx(0.0)
        assert vm3_start > vm1_start

    def test_all_vms_stop_when_vm3_reaches_stop_phase(self, usemem_result):
        for name in usemem_result.vm_names():
            runs = usemem_result.vm(name).runs
            assert len(runs) == 1
            assert runs[0].stopped_early

    def test_phase_durations_cover_allocation_steps(self, usemem_result):
        run = usemem_result.vm("VM1").runs[0]
        alloc_phases = [p for p in run.phase_order if p.startswith("alloc-")]
        assert len(alloc_phases) >= 3


class TestRunnerValidation:
    def test_unknown_workload_kind_rejected(self):
        spec = ScenarioSpec(
            name="bad",
            description="",
            vms=(VMSpec(name="VM1", ram_mb=64,
                        jobs=(WorkloadSpec(kind="not-a-workload"),)),),
            tmem_mb=64,
        )
        with pytest.raises(ScenarioError):
            ScenarioRunner(spec, "greedy")

    def test_runner_records_wall_clock(self, s1_greedy):
        assert s1_greedy.wall_clock_s > 0

    def test_policy_spec_recorded(self, s1_smart):
        assert s1_smart.policy_spec == "smart-alloc:P=6"
        assert s1_smart.scenario_name == "scenario-1"
