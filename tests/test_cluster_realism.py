"""Tests for cluster realism: contention, failure/migration, ephemeral spill.

Four load-bearing guarantees of the PR-5 cluster features:

1. **Contention is real and deterministic** — a ``contended:`` scenario
   shows per-link queue depth > 0 in its cluster section, repeated runs
   of the same seed are bit-identical, and the scalar and batched guest
   engines stay bit-identical even though every remote operation now
   carries its own queue-aware cost.
2. **Pins survive** — single-host scenarios and one-node clusters are
   untouched by the queueing channel, and plain (uncontended,
   failure-free) cluster runs serialize without any of the new keys.
3. **Failure & migration semantics** — a dead node's hosted frontswap
   pages are re-materialised via the owners' swap disks, its VMs finish
   on surviving nodes, planned migration moves a live VM with a modeled
   copy cost/downtime, and everything stays deterministic.
4. **Ephemeral remote cleancache** — peers host cleancache overflow in
   ephemeral pools, serve it back non-exclusively, and drop it (oldest
   first, owner notified) when their own VMs need the frames.
"""

from __future__ import annotations

import itertools
from dataclasses import replace

import pytest

from repro.channels.internode import InterNodeChannel
from repro.config import GuestConfig, SimulationConfig
from repro.core.coordinator import (
    NodeTmemView,
    available_coordinators,
    create_coordinator,
)
from repro.errors import ScenarioError
from repro.guest.cleancache import CleancacheClient
from repro.guest.frontswap import FrontswapClient
from repro.hypervisor.remote_tmem import RemoteTmemBackend
from repro.hypervisor.xen import Hypervisor
from repro.scenarios.registry import scenario_by_name
from repro.scenarios.results import ScenarioResult
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ClusterTopology, NodeFailure, VmMigration
from repro.sim.engine import SimulationEngine
from repro.units import SCENARIO_UNITS


class TestContendedScenario:
    @pytest.fixture(scope="class")
    def contended_result(self):
        spec = scenario_by_name("contended:nodes=3", scale=0.08)
        return run_scenario(spec, "greedy", seed=5)

    def test_queue_depth_positive_in_cluster_section(self, contended_result):
        cluster = contended_result.cluster
        assert cluster["max_queue_depth"] > 0
        assert cluster["links"]
        assert any(
            link["max_queue_depth"] > 0 for link in cluster["links"].values()
        )
        assert any(
            link["queue_wait_s"] > 0 for link in cluster["links"].values()
        )

    def test_queue_depth_traced(self, contended_result):
        names = [
            name for name in contended_result.trace.names()
            if name.startswith("link_queue/")
        ]
        assert names
        assert any(
            contended_result.trace.get(name).max() > 0 for name in names
        )

    def test_bit_identical_across_repeated_runs(self, contended_result):
        spec = scenario_by_name("contended:nodes=3", scale=0.08)
        again = run_scenario(spec, "greedy", seed=5)
        assert again.fingerprint() == contended_result.fingerprint()

    def test_serialization_round_trip(self, contended_result):
        data = contended_result.to_dict()
        assert "links" in data["cluster"]
        restored = ScenarioResult.from_dict(data)
        assert restored.fingerprint() == contended_result.fingerprint()

    def test_scalar_and_batched_engines_identical_under_contention(self):
        spec = scenario_by_name("contended:nodes=3", scale=0.06)
        fingerprints = {}
        for engine in ("scalar", "batched"):
            config = SimulationConfig(
                units=SCENARIO_UNITS,
                guest=GuestConfig(access_engine=engine),
            )
            result = run_scenario(spec, "greedy", config=config, seed=13)
            fingerprints[engine] = result.fingerprint()
        assert fingerprints["scalar"] == fingerprints["batched"]

    def test_contention_slows_the_guests_down(self):
        """Queue waits are charged to the guests: the same scenario on an
        infinite-capacity (uncontended) channel must not be slower."""
        spec = scenario_by_name("contended:nodes=2", scale=0.06)
        free = replace(spec, topology=replace(spec.topology, contended=False))
        contended = run_scenario(spec, "greedy", seed=9)
        uncontended = run_scenario(free, "greedy", seed=9)
        assert contended.mean_runtime_s() >= uncontended.mean_runtime_s()

    def test_plain_cluster_results_carry_no_new_keys(self):
        """Uncontended, failure-free runs serialize exactly as before
        (this is what keeps the cluster:nodes=3 fingerprint pins)."""
        spec = scenario_by_name("cluster:nodes=2,vms_per_node=1", scale=0.05)
        result = run_scenario(spec, "greedy", seed=2)
        cluster = result.cluster
        assert "links" not in cluster
        assert "events" not in cluster
        assert all(
            "failed" not in info and "ephemeral_spilled" not in info
            for info in cluster["nodes"].values()
        )

    def test_one_node_cluster_with_queueing_channel_matches_single_host(self):
        """The satellite guarantee: the new channel leaves one-node
        clusters bit-identical to the classic single-host runner."""
        from repro.scenarios.spec import NodeSpec

        spec = scenario_by_name("usemem-scenario", scale=0.1)
        clustered = replace(
            spec,
            topology=ClusterTopology(
                nodes=(
                    NodeSpec(
                        name="node1",
                        vm_names=spec.vm_names(),
                        tmem_mb=spec.tmem_mb,
                        host_memory_mb=spec.host_memory_mb,
                    ),
                ),
                contended=True,
            ),
        )
        single = run_scenario(spec, "greedy", seed=11)
        cluster = run_scenario(clustered, "greedy", seed=11)
        cluster.cluster = None
        assert single.fingerprint() == cluster.fingerprint()


class TestFailover:
    @pytest.fixture(scope="class")
    def failover_result(self):
        spec = scenario_by_name("failover:nodes=3,fail_at=10", scale=0.08)
        return run_scenario(spec, "greedy", seed=5)

    def test_run_completes_with_migrated_vms(self, failover_result):
        events = failover_result.cluster["events"]
        failure = next(e for e in events if e["kind"] == "failure")
        assert failure["node"] == "node2"
        assert failure["migrated_vms"] == ["n2.VM1"]
        assert failure["completed_at_s"] >= failure["at_s"]
        assert failure["copied_pages"] > 0
        # Every VM — including the failed node's — finished its runs.
        assert all(vm.runs for vm in failover_result.vms.values())
        # The dead node ends with no VMs; a survivor adopted n2.VM1.
        nodes = failover_result.cluster["nodes"]
        assert nodes["node2"]["failed"] is True
        assert nodes["node2"]["vm_names"] == []
        adopters = [
            name for name, info in nodes.items()
            if "n2.VM1" in info["vm_names"]
        ]
        assert len(adopters) == 1 and adopters[0] != "node2"

    def test_hosted_pages_lost_and_recovered(self, failover_result):
        """Frontswap pages hosted on the dead vault are refaulted from
        disk: the loss is counted and the owners keep running."""
        events = failover_result.cluster["events"]
        failure = next(e for e in events if e["kind"] == "failure")
        assert failure["lost_frontswap_pages"] > 0
        nodes = failover_result.cluster["nodes"]
        assert sum(info["pages_lost"] for info in nodes.values()) > 0

    def test_deterministic(self, failover_result):
        spec = scenario_by_name("failover:nodes=3,fail_at=10", scale=0.08)
        again = run_scenario(spec, "greedy", seed=5)
        assert again.fingerprint() == failover_result.fingerprint()

    def test_failure_makes_the_cluster_slower(self):
        """Losing the spill vault costs real time (disk refaults +
        migration downtime) compared to the same run without a failure."""
        spec = scenario_by_name("failover:nodes=3,fail_at=10", scale=0.08)
        sound = replace(spec, topology=replace(spec.topology, failures=()))
        failed = run_scenario(spec, "greedy", seed=5)
        healthy = run_scenario(sound, "greedy", seed=5)
        assert failed.mean_runtime_s() > healthy.mean_runtime_s()

    def test_every_node_failing_is_rejected(self):
        spec = scenario_by_name("failover:nodes=3", scale=0.08)
        with pytest.raises(ScenarioError):
            replace(
                spec,
                topology=replace(
                    spec.topology,
                    failures=tuple(
                        NodeFailure(node=f"node{k}", at_s=10.0 + k)
                        for k in (1, 2, 3)
                    ),
                ),
            )

    def test_unknown_failure_node_rejected(self):
        spec = scenario_by_name("failover:nodes=3", scale=0.08)
        with pytest.raises(ScenarioError):
            replace(
                spec,
                topology=replace(
                    spec.topology,
                    failures=(NodeFailure(node="nope", at_s=10.0),),
                ),
            )


class TestPlannedMigration:
    @pytest.fixture(scope="class")
    def migrate_result(self):
        spec = scenario_by_name("migrate:nodes=2,at=5", scale=0.08)
        return run_scenario(spec, "greedy", seed=5)

    def test_vm_finishes_on_target_node(self, migrate_result):
        nodes = migrate_result.cluster["nodes"]
        assert nodes["node1"]["vm_names"] == []
        assert "n1.VM1" in nodes["node2"]["vm_names"]
        assert all(vm.runs for vm in migrate_result.vms.values())

    def test_migration_event_records_copy_and_downtime(self, migrate_result):
        event = next(
            e for e in migrate_result.cluster["events"]
            if e["kind"] == "migration"
        )
        assert event["vm"] == "n1.VM1"
        assert event["from"] == "node1" and event["to"] == "node2"
        assert event["copied_pages"] > 1
        assert event["downtime_s"] > 0
        assert event["completed_at_s"] == pytest.approx(
            event["at_s"] + event["downtime_s"]
        )

    def test_source_node_accounting_is_clean(self, migrate_result):
        """Planned migration tears the source side down properly, so the
        run's final invariant check (which covers node1) passed and the
        VM's cumulative counters span the whole run."""
        vm = migrate_result.vm("n1.VM1")
        assert vm.cumul_puts_total > 0
        assert vm.evictions_to_tmem + vm.evictions_to_disk > 0

    def test_deterministic(self, migrate_result):
        spec = scenario_by_name("migrate:nodes=2,at=5", scale=0.08)
        again = run_scenario(spec, "greedy", seed=5)
        assert again.fingerprint() == migrate_result.fingerprint()

    def test_migration_during_inflight_relocation_is_skipped(self):
        """One live relocation per VM: a planned move scheduled while a
        failover copy is in flight must not start a second copy (which
        would resume the guest before its state arrived)."""
        spec = scenario_by_name("failover:nodes=3,fail_at=6", scale=0.08)
        spec = replace(
            spec,
            topology=replace(
                spec.topology,
                migrations=(
                    VmMigration(vm="n2.VM1", to_node="node3", at_s=6.0001),
                ),
            ),
        )
        result = run_scenario(spec, "greedy", seed=5)
        events = result.cluster["events"]
        skipped = [e for e in events if e.get("skipped")]
        assert len(skipped) == 1 and skipped[0]["vm"] == "n2.VM1"
        assert all(vm.runs for vm in result.vms.values())

    def test_target_dying_mid_copy_chains_a_second_failover(self):
        """If the copy's destination fails while the state is in flight,
        the VM is relocated again to a survivor instead of resuming on
        the carcass."""
        spec = scenario_by_name("migrate:nodes=3,at=5", scale=0.08)
        spec = replace(
            spec,
            topology=replace(
                spec.topology,
                failures=(NodeFailure(node="node2", at_s=5.001),),
            ),
        )
        result = run_scenario(spec, "greedy", seed=5)
        nodes = result.cluster["nodes"]
        assert nodes["node2"]["failed"] is True
        assert "n1.VM1" in nodes["node3"]["vm_names"]
        assert all(vm.runs for vm in result.vms.values())
        again = run_scenario(spec, "greedy", seed=5)
        assert again.fingerprint() == result.fingerprint()

    def test_planned_repatriation_reports_no_losses(self):
        """A failure-free migrate run must report zero pages_lost even
        when the VM had spilled pages onto its destination (those are
        planned repatriations, not failure losses)."""
        spec = scenario_by_name("migrate:nodes=2,at=5", scale=0.08)
        result = run_scenario(spec, "greedy", seed=5)
        nodes = result.cluster["nodes"]
        assert all(info["pages_lost"] == 0 for info in nodes.values())

    def test_migrating_to_home_node_rejected(self):
        spec = scenario_by_name("migrate:nodes=2", scale=0.08)
        with pytest.raises(ScenarioError):
            replace(
                spec,
                topology=replace(
                    spec.topology,
                    migrations=(
                        VmMigration(vm="n1.VM1", to_node="node1", at_s=5.0),
                    ),
                ),
            )


def build_two_nodes(pool_pages=50):
    """Two wired hypervisors + remote backends on one engine."""
    engine = SimulationEngine()
    config = SimulationConfig(units=SCENARIO_UNITS)
    domids = itertools.count(1)
    hypervisors = [
        Hypervisor(
            engine, config,
            host_memory_pages=2000,
            tmem_pool_pages=pool_pages,
            domid_allocator=lambda counter=domids: next(counter),
        )
        for _ in range(2)
    ]
    channel = InterNodeChannel(
        engine, latency_s=25e-6, bandwidth_bytes_s=1.25e9, page_bytes=4096
    )
    backends = [
        RemoteTmemBackend(f"n{i}", h, channel)
        for i, h in enumerate(hypervisors)
    ]
    backends[0].connect([backends[1]], spill_client_id=next(domids))
    backends[1].connect([backends[0]], spill_client_id=next(domids))
    return engine, hypervisors, backends, domids


class TestEphemeralRemoteCleancache:
    def test_cleancache_overflow_spills_to_ephemeral_pool(self):
        _, (h0, _h1), (b0, b1), domids = build_two_nodes()
        dom = h0.create_domain("vm", ram_pages=100)
        b0.register_home_vm(dom.vm_id)
        record = h0.register_tmem_client(
            dom.vm_id, frontswap=True, cleancache=True
        )
        client = CleancacheClient(
            dom.vm_id, record.cleancache_pool_id, h0.hypercalls
        )
        for page in range(70):  # 50 local frames + 20 spilled
            stored, _latency = client.put_page(page, now=0.0)
            assert stored
        assert b1.hosted_ephemeral_pages == 20
        assert b0.remote_ephemeral_pages_of(dom.vm_id) == 20
        assert b0.stats.ephemeral_spilled == 20
        # Persistent counters are untouched by ephemeral traffic.
        assert b0.stats.pages_spilled == 0

    def test_remote_ephemeral_get_is_non_exclusive(self):
        _, (h0, _h1), (b0, b1), _domids = build_two_nodes()
        dom = h0.create_domain("vm", ram_pages=100)
        b0.register_home_vm(dom.vm_id)
        record = h0.register_tmem_client(
            dom.vm_id, frontswap=True, cleancache=True
        )
        client = CleancacheClient(
            dom.vm_id, record.cleancache_pool_id, h0.hypercalls
        )
        for page in range(60):
            client.put_page(page, now=0.0)
        hosted = b1.hosted_ephemeral_pages
        assert hosted > 0
        hit, _latency = client.get_page(59)
        assert hit
        # Unlike a frontswap fetch, the hosted copy stays on the peer.
        assert b1.hosted_ephemeral_pages == hosted
        hit_again, _latency = client.get_page(59)
        assert hit_again

    def test_local_pressure_drops_oldest_hosted_ephemeral(self):
        _, (h0, h1), (b0, b1), _domids = build_two_nodes()
        dom = h0.create_domain("vm", ram_pages=100)
        b0.register_home_vm(dom.vm_id)
        record = h0.register_tmem_client(
            dom.vm_id, frontswap=True, cleancache=True
        )
        client = CleancacheClient(
            dom.vm_id, record.cleancache_pool_id, h0.hypercalls
        )
        for page in range(70):
            client.put_page(page, now=0.0)
        assert b1.hosted_ephemeral_pages == 20

        # Node 1's own VM now needs every frame of its pool: the hosted
        # foreign ephemerals yield, oldest first, owner notified.
        dom1 = h1.create_domain("vm1", ram_pages=100)
        b1.register_home_vm(dom1.vm_id)
        record1 = h1.register_tmem_client(dom1.vm_id, frontswap=True)
        frontswap = FrontswapClient(
            dom1.vm_id, record1.frontswap_pool_id, h1.hypercalls
        )
        overflow = 5
        for page in range(h1.free_tmem_pages + overflow):
            stored, _latency = frontswap.store(page, now=1.0)
            assert stored  # local demand always wins over foreign spill
        assert b1.stats.hosted_drops == overflow
        assert b0.stats.ephemeral_dropped == overflow
        assert b1.hosted_ephemeral_pages == 20 - overflow
        # The dropped pages were the oldest spills (pages 50..54):
        # a later lookup is a legal cleancache miss.
        hit, _latency = client.get_page(50)
        assert not hit
        hit, _latency = client.get_page(69)
        assert hit
        h0.check_invariants()
        h1.check_invariants()

    def test_frontswap_spill_is_never_dropped(self):
        """Persistent spill stays persistent: pressure on the host can
        only evict ephemeral pages, not frontswap overflow."""
        _, (h0, h1), (b0, b1), _domids = build_two_nodes()
        dom = h0.create_domain("vm", ram_pages=100)
        b0.register_home_vm(dom.vm_id)
        record = h0.register_tmem_client(dom.vm_id, frontswap=True)
        frontswap = FrontswapClient(
            dom.vm_id, record.frontswap_pool_id, h0.hypercalls
        )
        for page in range(60):  # 50 local + 10 persistent spill
            stored, _latency = frontswap.store(page, now=0.0)
            assert stored
        assert b0.stats.pages_spilled == 10

        dom1 = h1.create_domain("vm1", ram_pages=100)
        b1.register_home_vm(dom1.vm_id)
        record1 = h1.register_tmem_client(dom1.vm_id, frontswap=True)
        fs1 = FrontswapClient(
            dom1.vm_id, record1.frontswap_pool_id, h1.hypercalls
        )
        free = h1.free_tmem_pages
        stored_count = sum(
            1 for page in range(free + 5)
            if fs1.store(1_000_000 + page, now=1.0)[0]
        )
        # No ephemeral pages to drop: the overflow spills back or fails,
        # but the hosted persistent pages survive untouched.
        assert b1.stats.hosted_drops == 0
        assert b0.remote_pages_of(dom.vm_id) == 10
        for page in range(50, 60):
            hit, _latency = frontswap.load(page)
            assert hit
        assert stored_count >= free


class TestSpillFeedbackCoordinator:
    def view(self, name, capacity, *, failed=0, spilled=0, dropped=0):
        return NodeTmemView(
            name=name,
            capacity_pages=capacity,
            used_pages=0,
            free_pages=capacity,
            failed_puts=failed,
            spilled_puts=spilled,
            vm_count=1,
            dropped_pages=dropped,
        )

    def test_registered(self):
        assert "spill-feedback" in available_coordinators()

    def test_moves_capacity_towards_spilling_node(self):
        coordinator = create_coordinator("spill-feedback:percent=50")
        desired = coordinator.rebalance([
            self.view("spiller", 100, spilled=400),
            self.view("idle", 500),
        ])
        assert desired is not None
        assert sum(desired.values()) == 600
        assert desired["spiller"] > 100
        assert desired["idle"] < 500

    def test_drops_outweigh_spills(self):
        """A node whose remote pages come back as drops needs local
        capacity more than one whose spills stay parked."""
        coordinator = create_coordinator(
            "spill-feedback:percent=50,spill_weight=1,drop_weight=4"
        )
        desired = coordinator.rebalance([
            self.view("dropping", 300, spilled=100, dropped=100),
            self.view("spilling", 300, spilled=100),
            self.view("idle", 300),
        ])
        assert desired is not None
        assert desired["dropping"] > desired["spilling"] > desired["idle"]

    def test_parameter_validation(self):
        from repro.errors import PolicyError

        with pytest.raises(PolicyError):
            create_coordinator("spill-feedback:drop_weight=-1")

    def test_end_to_end_feedback_grows_pressured_pool(self):
        """Asymmetric load (small pressured pools vs an idle vault):
        spill feedback moves capacity away from the vault."""
        spec = scenario_by_name("failover:nodes=3,fail_at=1000", scale=0.08)
        units = SCENARIO_UNITS
        result = run_scenario(spec, "greedy", seed=7)
        assert result.cluster["capacity_moves"] > 0
        vault_initial = units.pages_from_mib(spec.topology.nodes[1].tmem_mb)
        nodes = result.cluster["nodes"]
        assert nodes["node2"]["tmem_pages_end"] < vault_initial


class TestClusterAnalysisExtensions:
    def test_link_summaries_and_rollup(self):
        from repro.analysis.cluster import (
            cluster_rollup,
            link_summaries,
            render_cluster_table,
        )

        spec = scenario_by_name("contended:nodes=2", scale=0.06)
        result = run_scenario(spec, "greedy", seed=7)
        links = link_summaries(result)
        assert links
        assert all(link.pages > 0 for link in links)
        assert any(link.queue_wait_s > 0 for link in links)
        assert all(0 <= link.utilization <= 1 for link in links)
        rollup = cluster_rollup(result)
        assert rollup["max_queue_depth"] > 0
        assert rollup["interconnect_busy_s"] > 0
        table = render_cluster_table(result, title="contended")
        assert "max depth" in table

    def test_plain_cluster_rollup_reports_zero_contention(self):
        from repro.analysis.cluster import cluster_rollup, link_summaries

        spec = scenario_by_name("cluster:nodes=2,vms_per_node=1", scale=0.05)
        result = run_scenario(spec, "greedy", seed=2)
        assert link_summaries(result) == []
        rollup = cluster_rollup(result)
        assert rollup["max_queue_depth"] == 0
        assert rollup["failures"] == 0 and rollup["migrations"] == 0


class TestClusterRealismCli:
    def test_run_with_contention_and_failure(self, capsys):
        from repro.cli import main

        code = main([
            "run", "usemem-scenario",
            "--scale", "0.08",
            "--seed", "5",
            "--nodes", "3",
            "--policy", "greedy",
            "--contended",
            "--fail", "node2@6",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Per-node breakdown" in out
        assert "max depth" in out
        assert "1 node failure(s)" in out

    def test_cluster_flags_require_nodes(self, capsys):
        from repro.cli import main

        code = main([
            "run", "usemem-scenario", "--contended", "--policy", "greedy",
        ])
        assert code == 2

    def test_bad_fail_spec_rejected(self, capsys):
        from repro.cli import main

        code = main([
            "run", "usemem-scenario", "--nodes", "2",
            "--policy", "greedy", "--fail", "garbage",
        ])
        assert code == 2

    def test_new_families_listed(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("contended", "failover", "migrate", "spill-feedback"):
            assert name in out
