"""Tests for the command-line front end."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "scenario-1"])
        assert args.scenario == "scenario-1"
        assert args.policies is None
        assert args.scale == pytest.approx(0.25)

    def test_run_with_repeated_policies(self):
        args = build_parser().parse_args(
            ["run", "scenario-2", "--policy", "greedy", "--policy", "smart-alloc:P=6"]
        )
        assert args.policies == ["greedy", "smart-alloc:P=6"]


class TestCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "scenario-1" in out
        assert "smart-alloc" in out
        assert "no-tmem" in out
        # The parametric families and the workload kinds are listed too.
        assert "many-vms" in out and "churn" in out and "bursty" in out
        assert "Workload kinds:" in out
        assert "graph-analytics" in out

    def test_tables_command(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out
        assert "vm_data_hyp[id].tmem_used" in out

    def test_run_command_small_scale(self, capsys):
        code = main([
            "run", "usemem-scenario",
            "--scale", "0.1",
            "--seed", "5",
            "--policy", "greedy",
            "--policy", "no-tmem",
            "--fairness",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Running times" in out
        assert "greedy" in out and "no-tmem" in out
        assert "Jain fairness" in out

    def test_run_command_with_traces(self, capsys):
        code = main([
            "run", "scenario-1",
            "--scale", "0.1",
            "--policy", "static-alloc",
            "--traces",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Tmem usage over time" in out

    def test_unknown_scenario_raises(self):
        with pytest.raises(Exception):
            main(["run", "scenario-99", "--policy", "greedy"])

    def test_sweep_command_archives_and_aggregates(self, capsys, tmp_path):
        results_dir = tmp_path / "sweep"
        argv = [
            "sweep",
            "--scenario", "usemem-scenario",
            "--policy", "greedy",
            "--policy", "no-tmem",
            "--num-seeds", "2",
            "--scale", "0.1",
            "--results-dir", str(results_dir),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Sweep aggregate" in out
        assert "greedy" in out and "no-tmem" in out
        assert "2 new" not in out  # 4 points: 2 policies x 2 seeds
        assert "4 new, 0 reused" in out
        assert len(list(results_dir.glob("*.json"))) == 4
        # Re-running resumes from the archive instead of re-simulating.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 new, 4 reused" in out

    def test_sweep_with_family_and_explicit_seed(self, capsys, tmp_path):
        assert main([
            "sweep",
            "--scenario", "churn:n=4",
            "--policy", "greedy",
            "--seed", "7",
            "--scale", "0.1",
            "--results-dir", str(tmp_path / "r"),
        ]) == 0
        out = capsys.readouterr().out
        assert "churn:n=4" in out

    def test_sweep_remote_backend_matches_serial_archive(self, capsys, tmp_path):
        """`sweep --backend remote` completes and archives results with
        fingerprints identical to a serial run of the same spec."""
        import json

        axes = [
            "--scenario", "usemem-scenario",
            "--policy", "greedy",
            "--num-seeds", "2",
            "--scale", "0.1",
        ]
        serial_dir, remote_dir = tmp_path / "serial", tmp_path / "remote"
        assert main(["sweep", *axes, "--results-dir", str(serial_dir)]) == 0
        capsys.readouterr()
        assert main([
            "sweep", *axes,
            "--backend", "remote",
            "--num-workers", "2",
            "--lease-expiry", "5",
            "--results-dir", str(remote_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "backend=remote" in out

        def fingerprints(directory):
            out = {}
            for path in directory.glob("*.json"):
                envelope = json.loads(path.read_text())
                out[path.name] = envelope["fingerprint"]
            return out

        serial_fps = fingerprints(serial_dir)
        assert serial_fps and fingerprints(remote_dir) == serial_fps

    def test_sweep_remote_dead_letters_exit_nonzero(self, capsys, tmp_path):
        """Points that permanently fail dead-letter, are summarized on
        stderr, and flip the exit code — the sweep still archives the
        points that worked."""
        code = main([
            "sweep",
            "--scenario", "usemem-scenario",
            "--policy", "no-tmem",
            "--policy", "no-such-policy",
            "--seed", "1",
            "--scale", "0.1",
            "--backend", "remote",
            "--max-attempts", "2",
            "--lease-expiry", "5",
            "--results-dir", str(tmp_path / "r"),
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "FAILED: 1 point(s) permanently failed" in err
        assert "dead-letter" in err and "no-such-policy" in err
        # The healthy point was still simulated and archived.
        assert len(list((tmp_path / "r").glob("*.json"))) == 1

    def test_bench_command_writes_report(self, capsys, tmp_path):
        code = main([
            "bench", "--quick",
            "--repeats", "1",
            "--output", str(tmp_path),
            "--baseline", str(tmp_path / "missing.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "pages/s" in out
        assert "speedup" in out
        report = tmp_path / "BENCH_quick.json"
        assert report.exists()
        import json
        data = json.loads(report.read_text())
        assert data["speedups"]
        assert all(r["pages_per_s"] > 0 for r in data["records"])

    def test_bench_regression_detection(self, capsys, tmp_path):
        import json
        baseline = {
            "label": "seed", "speedups": {"fig07-micro": 1000.0},
        }
        (tmp_path / "fake.json").write_text(json.dumps(baseline))
        code = main([
            "bench", "--quick",
            "--repeats", "1",
            "--output", str(tmp_path),
            "--baseline", str(tmp_path / "fake.json"),
        ])
        assert code == 1
        assert "PERF REGRESSIONS" in capsys.readouterr().out
