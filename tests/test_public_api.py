"""Tests for the top-level public API surface."""

import importlib


import repro


class TestPublicApi:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_quickstart_flow(self):
        """The README quickstart must work as written (at reduced scale)."""
        spec = repro.scenario_1(scale=0.1)
        greedy = repro.run_scenario(spec, "greedy", seed=1)
        smart = repro.run_scenario(spec, "smart-alloc:P=6", seed=1)
        assert isinstance(greedy.mean_runtime_s(), float)
        assert isinstance(smart.mean_runtime_s(), float)
        table = repro.render_runtime_table({"greedy": greedy, "smart": smart})
        assert "VM1/run1" in table

    def test_custom_policy_registration(self):
        """Users can add their own policy and select it by name."""
        from repro.core.policy import TmemPolicy, create_policy, register_policy
        from repro.core.targets import equal_share

        name = "half-pool-test-policy"

        @register_policy(name)
        class HalfPool(TmemPolicy):
            def decide(self, memstats):
                from repro.core.policy import PolicyDecision
                vec = equal_share(memstats.vm_ids(), memstats.total_tmem // 2)
                return PolicyDecision.set_targets(vec)

        policy = create_policy(name)
        assert policy.name == name
        assert name in repro.available_policies()

    def test_subpackages_importable(self):
        for module in (
            "repro.core",
            "repro.core.policies",
            "repro.cluster",
            "repro.hypervisor",
            "repro.guest",
            "repro.devices",
            "repro.channels",
            "repro.sim",
            "repro.workloads",
            "repro.scenarios",
            "repro.analysis",
            "repro.cli",
        ):
            importlib.import_module(module)

    def test_error_hierarchy(self):
        assert issubclass(repro.TmemError, repro.ReproError)
        assert issubclass(repro.PolicyError, repro.ReproError)
        assert issubclass(repro.ScenarioError, repro.ReproError)
