"""Lease state machine: unit tests + property tests over interleavings.

The two headline invariants (ISSUE 6):

* **exactly-once** — no point is ever recorded twice, whatever the
  interleaving of acquires, expiries, failures and (duplicate) record
  submissions;
* **liveness** — every point eventually ends ``done`` or dead-lettered
  under arbitrary crash/expiry interleavings, and the number of leases
  granted per point never exceeds the retry budget.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.experiments import ExperimentPoint, LeaseQueue
from repro.experiments.leases import DEAD, DONE, LEASED, PENDING


def make_points(n):
    return [
        ExperimentPoint("usemem-scenario", f"greedy-{i}" if i else "greedy",
                        seed=i, scale=0.1)
        for i in range(n)
    ]


def make_queue(n=3, **kwargs):
    kwargs.setdefault("lease_expiry_s", 10.0)
    kwargs.setdefault("max_attempts", 3)
    kwargs.setdefault("backoff_base_s", 1.0)
    kwargs.setdefault("backoff_jitter", 0.0)
    return LeaseQueue(make_points(n), **kwargs)


class TestLeaseQueueUnit:
    def test_acquire_in_order_then_exhausted(self):
        queue = make_queue(2)
        g1 = queue.acquire("w1", now=0.0)
        g2 = queue.acquire("w2", now=0.0)
        assert g1.point == make_points(2)[0]
        assert g2.point == make_points(2)[1]
        assert queue.acquire("w3", now=0.0) is None
        assert queue.counts() == {PENDING: 0, LEASED: 2, DONE: 0, DEAD: 0}

    def test_record_completes_and_dedupes(self):
        queue = make_queue(1)
        grant = queue.acquire("w1", now=0.0)
        first = queue.record(grant.point, "fp", {"x": 1}, now=1.0)
        assert first.recorded and not first.duplicate
        dup = queue.record(grant.point, "fp", {"x": 1}, now=2.0)
        assert dup.duplicate and not dup.recorded
        assert queue.is_settled
        assert queue.results()[grant.point] == {"x": 1}
        assert queue.fingerprints()[grant.point] == "fp"

    def test_unknown_point_rejected(self):
        queue = make_queue(1)
        stranger = ExperimentPoint("scenario-1", "greedy", seed=99, scale=0.5)
        with pytest.raises(ExperimentError):
            queue.record(stranger, "fp", None, now=0.0)

    def test_expiry_reassigns_with_backoff(self):
        queue = make_queue(1, lease_expiry_s=5.0, backoff_base_s=2.0)
        g1 = queue.acquire("w1", now=0.0)
        assert g1.attempt == 1
        # Not expired yet: nothing to take.
        assert queue.acquire("w2", now=4.0) is None
        # Expired at t=5; the point backs off 2s (attempt 1) before
        # becoming eligible again.
        expired = queue.expire(now=5.0)
        assert [g.point for g in expired] == [g1.point]
        assert queue.acquire("w2", now=5.5) is None
        g2 = queue.acquire("w2", now=7.1)
        assert g2 is not None and g2.attempt == 2
        assert g2.lease_id != g1.lease_id

    def test_heartbeat_extends_lease(self):
        queue = make_queue(1, lease_expiry_s=5.0)
        grant = queue.acquire("w1", now=0.0)
        assert queue.heartbeat(grant.lease_id, now=4.0)
        # Would have expired at 5.0 without the heartbeat.
        assert queue.acquire("w2", now=6.0) is None
        assert queue.heartbeat(grant.lease_id, now=8.0)
        assert queue.counts()[LEASED] == 1

    def test_heartbeat_after_expiry_is_rejected(self):
        queue = make_queue(1, lease_expiry_s=5.0, backoff_base_s=0.0)
        grant = queue.acquire("w1", now=0.0)
        assert not queue.heartbeat(grant.lease_id, now=5.0)
        # The point went back to pending and is someone else's now.
        g2 = queue.acquire("w2", now=5.0)
        assert g2 is not None and g2.attempt == 2

    def test_fail_schedules_retry_then_dead_letters(self):
        queue = make_queue(1, max_attempts=2, backoff_base_s=1.0)
        g1 = queue.acquire("w1", now=0.0)
        assert queue.fail(g1.lease_id, "boom", now=1.0)
        assert queue.acquire("w1", now=1.5) is None  # backing off
        g2 = queue.acquire("w1", now=3.0)
        assert g2.attempt == 2
        assert queue.fail(g2.lease_id, "boom again", now=4.0)
        assert queue.is_settled
        [letter] = queue.dead_letters()
        assert letter.attempts == 2
        assert letter.errors == ("boom", "boom again")
        assert "boom again" in letter.summary()

    def test_stale_fail_is_ignored(self):
        queue = make_queue(1, lease_expiry_s=5.0, backoff_base_s=0.0)
        g1 = queue.acquire("w1", now=0.0)
        queue.expire(now=10.0)
        g2 = queue.acquire("w2", now=10.0)
        # w1 comes back from the dead and reports failure on its old
        # lease: must not affect w2's active lease.
        assert not queue.fail(g1.lease_id, "late boom", now=11.0)
        assert queue.heartbeat(g2.lease_id, now=11.0)

    def test_late_result_after_expiry_records_exactly_once(self):
        """The lost worker finishes anyway; first submission wins."""
        queue = make_queue(1, lease_expiry_s=5.0, backoff_base_s=0.0)
        g1 = queue.acquire("w1", now=0.0)
        queue.expire(now=6.0)
        g2 = queue.acquire("w2", now=6.0)
        assert g2.attempt == 2
        # w1's straggler result arrives while w2 is still simulating.
        late = queue.record(g1.point, "fp", {"from": "w1"}, now=7.0)
        assert late.recorded
        # w2 finishes and submits the (deterministic, identical) result.
        dup = queue.record(g2.point, "fp", {"from": "w2"}, now=8.0)
        assert dup.duplicate and not dup.recorded
        assert queue.results()[g1.point] == {"from": "w1"}

    def test_late_result_resurrects_dead_letter(self):
        queue = make_queue(1, max_attempts=1)
        g1 = queue.acquire("w1", now=0.0)
        queue.fail(g1.lease_id, "boom", now=1.0)
        assert queue.dead_letters()
        outcome = queue.record(g1.point, "fp", None, now=2.0)
        assert outcome.recorded and outcome.resurrected
        assert not queue.dead_letters()
        assert queue.is_settled

    def test_next_eligible_delay(self):
        queue = make_queue(2, backoff_base_s=4.0)
        assert queue.next_eligible_delay(now=0.0) == 0.0
        g1 = queue.acquire("w1", now=0.0)
        g2 = queue.acquire("w1", now=0.0)
        assert queue.next_eligible_delay(now=0.0) is None  # all leased
        queue.fail(g1.lease_id, "x", now=0.0)
        assert queue.next_eligible_delay(now=0.0) == pytest.approx(4.0)
        queue.fail(g2.lease_id, "x", now=0.0)
        assert queue.next_eligible_delay(now=2.0) == pytest.approx(2.0)

    def test_backoff_grows_exponentially_and_caps(self):
        queue = make_queue(
            1, max_attempts=10, backoff_base_s=1.0, backoff_cap_s=4.0,
            backoff_jitter=0.0, lease_expiry_s=1000.0,
        )
        delays = []
        now = 0.0
        for _ in range(5):
            grant = queue.acquire("w", now=now)
            queue.fail(grant.lease_id, "x", now=now)
            entry = queue._entries[grant.point.point_id]
            delays.append(entry.eligible_at - now)
            now = entry.eligible_at
        assert delays == [1.0, 2.0, 4.0, 4.0, 4.0]

    def test_jitter_is_deterministic_per_seed(self):
        def delays(seed):
            queue = make_queue(
                1, max_attempts=5, backoff_jitter=0.5, seed=seed,
                lease_expiry_s=1000.0,
            )
            out, now = [], 0.0
            for _ in range(4):
                grant = queue.acquire("w", now=now)
                queue.fail(grant.lease_id, "x", now=now)
                entry = queue._entries[grant.point.point_id]
                out.append(entry.eligible_at - now)
                now = entry.eligible_at
            return out

        assert delays(7) == delays(7)
        assert delays(7) != delays(8)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            make_queue(1, lease_expiry_s=0.0)
        with pytest.raises(ExperimentError):
            make_queue(1, max_attempts=0)
        point = make_points(1)[0]
        with pytest.raises(ExperimentError):
            LeaseQueue([point, point])


# --------------------------------------------------------------------------
# Property tests: arbitrary interleavings
# --------------------------------------------------------------------------

#: One scripted step: (op, worker index or None).
OPS = st.sampled_from(["acquire", "record", "fail", "expire", "advance"])


@st.composite
def interleavings(draw):
    n_points = draw(st.integers(min_value=1, max_value=4))
    steps = draw(st.lists(OPS, min_size=1, max_size=60))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return n_points, steps, seed


class _Model:
    """Drives a LeaseQueue with a scripted interleaving, checking
    exactly-once recording against an independent model."""

    def __init__(self, n_points, seed):
        self.queue = LeaseQueue(
            make_points(n_points),
            lease_expiry_s=5.0,
            max_attempts=3,
            backoff_base_s=1.0,
            backoff_cap_s=4.0,
            backoff_jitter=0.25,
            seed=seed,
        )
        self.now = 0.0
        self.live_grants = []   # grants we still might act on
        self.recorded_count = {}

    def step(self, op):
        queue = self.queue
        if op == "advance":
            self.now += 2.6
        elif op == "acquire":
            grant = queue.acquire("w", self.now)
            if grant is not None:
                self.live_grants.append(grant)
        elif op == "expire":
            queue.expire(self.now + 5.0)
            self.now += 5.0
        elif op in ("record", "fail") and self.live_grants:
            grant = self.live_grants.pop(0)
            if op == "record":
                outcome = queue.record(grant.point, "fp", None, self.now)
                count = self.recorded_count.get(grant.point, 0)
                # exactly-once: recorded=True only the first time ever
                assert outcome.recorded == (count == 0)
                assert outcome.duplicate == (count > 0)
                self.recorded_count[grant.point] = count + 1 if count == 0 else count
            else:
                queue.fail(grant.lease_id, "scripted failure", self.now)

    def check_invariants(self):
        queue = self.queue
        counts = queue.counts()
        assert sum(counts.values()) == len(queue)
        for entry in queue._entries.values():
            assert entry.attempts <= queue.max_attempts
            if entry.status == DONE:
                # done points hold their recorded payload forever
                assert entry.point in self.recorded_count


@settings(max_examples=120, deadline=None)
@given(interleavings())
def test_exactly_once_under_arbitrary_interleavings(script):
    n_points, steps, seed = script
    model = _Model(n_points, seed)
    for op in steps:
        model.step(op)
        model.check_invariants()


@settings(max_examples=120, deadline=None)
@given(interleavings())
def test_every_point_eventually_settles(script):
    """After any scripted chaos prefix, draining the queue terminates
    with every point done or dead-lettered, within the retry budget."""
    n_points, steps, seed = script
    model = _Model(n_points, seed)
    for op in steps:
        model.step(op)

    queue, now = model.queue, model.now
    rounds = 0
    while not queue.is_settled:
        rounds += 1
        assert rounds < 1000, "queue failed to settle"
        now += 6.0  # beyond lease expiry and max backoff
        queue.expire(now)
        grant = queue.acquire("drain", now)
        if grant is None:
            continue
        # Alternate crash-and-retry with eventual success, seeded so the
        # schedule is reproducible.
        if (grant.attempt + hash(grant.point) % 2) % 2 == 0:
            queue.fail(grant.lease_id, "drain failure", now)
        else:
            queue.record(grant.point, "fp", None, now)

    counts = queue.counts()
    assert counts[PENDING] == 0 and counts[LEASED] == 0
    assert counts[DONE] + counts[DEAD] == len(queue)
    for letter in queue.dead_letters():
        assert letter.attempts == queue.max_attempts
        assert len(letter.errors) == queue.max_attempts
