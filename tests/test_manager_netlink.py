"""Tests for the Memory Manager, netlink channels and privileged TKM."""

import pytest

from repro.channels.netlink import NetlinkChannel
from repro.config import SimulationConfig
from repro.core.manager import MemoryManager
from repro.core.policies import GreedyPolicy, SmartAllocPolicy, StaticAllocPolicy
from repro.guest.tkm import PrivilegedTkm, TmemKernelModule
from repro.hypervisor.pages import PageKey
from repro.hypervisor.xen import Hypervisor
from repro.sim.engine import SimulationEngine


class TestNetlinkChannel:
    def test_zero_latency_delivers_immediately(self):
        engine = SimulationEngine()
        channel = NetlinkChannel(engine, latency_s=0.0)
        received = []
        channel.subscribe(received.append)
        channel.send("hello", {"x": 1})
        assert len(received) == 1
        assert received[0].payload == {"x": 1}

    def test_latency_defers_delivery_until_engine_runs(self):
        engine = SimulationEngine()
        channel = NetlinkChannel(engine, latency_s=0.5)
        received = []
        channel.subscribe(received.append)
        channel.send("stats", 42)
        assert received == []
        engine.run()
        assert len(received) == 1
        assert engine.now == pytest.approx(0.5)

    def test_history_filters_by_kind(self):
        engine = SimulationEngine()
        channel = NetlinkChannel(engine)
        channel.send("a", 1)
        channel.send("b", 2)
        channel.send("a", 3)
        assert len(channel.history("a")) == 2
        assert channel.messages_sent == 3

    def test_fault_injection_drops_messages(self):
        engine = SimulationEngine()
        channel = NetlinkChannel(engine)
        received = []
        channel.subscribe(received.append)
        channel.inject_fault(lambda msg: msg.kind == "stats")
        channel.send("stats", 1)
        channel.send("targets", 2)
        assert len(received) == 1
        assert channel.messages_dropped == 1


def build_stack(policy, tmem_pages=100, vm_count=2):
    """Full control-plane stack: hypervisor + TKM + netlink + MM."""
    engine = SimulationEngine()
    config = SimulationConfig()
    hv = Hypervisor(engine, config, host_memory_pages=4096, tmem_pool_pages=tmem_pages)
    records = []
    for i in range(vm_count):
        record = hv.create_domain(f"vm{i+1}", ram_pages=128)
        hv.register_tmem_client(record.vm_id)
        records.append(record)
    stats_ch = NetlinkChannel(engine, latency_s=config.sampling.relay_latency_s)
    target_ch = NetlinkChannel(engine, latency_s=config.sampling.writeback_latency_s)
    tkm = PrivilegedTkm(hv, stats_channel=stats_ch, target_channel=target_ch)
    manager = MemoryManager(policy, stats_channel=stats_ch, target_channel=target_ch)
    return engine, hv, records, tkm, manager


class TestPrivilegedTkm:
    def test_relays_snapshots_to_user_space(self):
        engine, hv, records, tkm, manager = build_stack(StaticAllocPolicy())
        hv.start()
        engine.run(until=3.1)
        assert tkm.stats.snapshots_relayed == 3
        assert manager.stats.snapshots_received == 3

    def test_targets_travel_back_to_the_hypervisor(self):
        engine, hv, records, tkm, manager = build_stack(StaticAllocPolicy())
        hv.start()
        engine.run(until=2.0)
        # static-alloc divides 100 pages over 2 VMs.
        for record in records:
            assert hv.accounting.account(record.vm_id).mm_target == 50
        assert tkm.stats.target_updates_applied >= 1

    def test_greedy_policy_never_sends_targets(self):
        engine, hv, records, tkm, manager = build_stack(GreedyPolicy())
        hv.start()
        engine.run(until=5.0)
        assert tkm.stats.target_updates_applied == 0
        for record in records:
            assert not hv.accounting.account(record.vm_id).has_target

    def test_apply_targets_directly(self):
        engine, hv, records, tkm, manager = build_stack(GreedyPolicy())
        tkm.apply_targets({records[0].vm_id: 7})
        assert hv.accounting.account(records[0].vm_id).mm_target == 7


class TestMemoryManager:
    def test_process_snapshot_directly(self):
        engine, hv, records, tkm, manager = build_stack(StaticAllocPolicy())
        snapshot = hv.sampler.sample_now()
        decision = manager.process_snapshot(snapshot)
        assert decision.changed
        assert decision.targets.total() == 100

    def test_duplicate_targets_suppressed(self):
        """send_to_hypervisor only transmits when the targets changed."""
        engine, hv, records, tkm, manager = build_stack(StaticAllocPolicy())
        hv.start()
        engine.run(until=5.0)
        assert manager.stats.target_updates_sent == 1

    def test_history_is_kept(self):
        engine, hv, records, tkm, manager = build_stack(SmartAllocPolicy(percent=2))
        hv.start()
        # Run slightly past the 4th sampling instant so the netlink relay
        # latency does not hide the final snapshot from the MM.
        engine.run(until=4.5)
        assert len(manager.history) == 4
        assert manager.history.latest().time == pytest.approx(4.0)
        assert manager.history.previous().time == pytest.approx(3.0)

    def test_reset_clears_state(self):
        engine, hv, records, tkm, manager = build_stack(StaticAllocPolicy())
        hv.start()
        engine.run(until=2.0)
        manager.reset()
        assert len(manager.history) == 0
        assert manager.last_sent_targets is None
        assert manager.stats.snapshots_received == 0

    def test_smart_alloc_reacts_to_failed_puts_through_the_full_stack(self):
        engine, hv, records, tkm, manager = build_stack(
            SmartAllocPolicy(percent=10), tmem_pages=100
        )
        vm = records[0]
        hv.start()
        # Give the MM one quiet interval so it installs zero targets, then
        # generate puts that fail against the zero target.
        engine.run(until=1.2)
        for i in range(10):
            hv.backend.put(vm.vm_id, vm.frontswap_pool_id, PageKey(0, 0, i),
                           version=1, now=engine.now)
        engine.run(until=2.5)
        target = hv.accounting.account(vm.vm_id).mm_target
        assert target >= 10  # grew by P% of the pool after the failed puts


class TestGuestTkm:
    def test_module_init_creates_frontswap_pool(self, engine, config):
        hv = Hypervisor(engine, config, host_memory_pages=1024, tmem_pool_pages=64)
        record = hv.create_domain("vm", ram_pages=128)
        tkm = TmemKernelModule(hv, record.vm_id)
        assert tkm.frontswap is not None
        assert tkm.cleancache is None
        stored, _ = tkm.frontswap.store(1, now=0.0)
        assert stored

    def test_module_init_with_cleancache(self, engine, config):
        hv = Hypervisor(engine, config, host_memory_pages=1024, tmem_pool_pages=64)
        record = hv.create_domain("vm", ram_pages=128)
        tkm = TmemKernelModule(hv, record.vm_id, enable_cleancache=True)
        assert tkm.cleancache is not None
        ok, _ = tkm.cleancache.put_page(3, now=0.0)
        assert ok

    def test_hypercall_stats_exposed(self, engine, config):
        hv = Hypervisor(engine, config, host_memory_pages=1024, tmem_pool_pages=64)
        record = hv.create_domain("vm", ram_pages=128)
        tkm = TmemKernelModule(hv, record.vm_id)
        tkm.frontswap.store(1, now=0.0)
        assert tkm.hypercall_stats.total_calls == 1
