"""Tests for scenario specifications and the scenario library (Table II)."""

import pytest

from repro.errors import ScenarioError
from repro.scenarios.library import (
    PAPER_POLICIES,
    all_scenarios,
    scenario_1,
    scenario_2,
    scenario_3,
    scenario_by_name,
    usemem_scenario,
)
from repro.scenarios.spec import PhaseTrigger, ScenarioSpec, VMSpec, WorkloadSpec
from repro.units import SCENARIO_UNITS


class TestSpecValidation:
    def test_vm_spec_rejects_bad_values(self):
        with pytest.raises(ScenarioError):
            VMSpec(name="", ram_mb=512)
        with pytest.raises(ScenarioError):
            VMSpec(name="v", ram_mb=0)
        with pytest.raises(ScenarioError):
            VMSpec(name="v", ram_mb=512, vcpus=0)
        with pytest.raises(ScenarioError):
            VMSpec(name="v", ram_mb=512, swap_mb=0)

    def test_workload_spec_rejects_negative_times(self):
        with pytest.raises(ScenarioError):
            WorkloadSpec(kind="usemem", start_at=-1)
        with pytest.raises(ScenarioError):
            WorkloadSpec(kind="usemem", delay_after_previous=-1)

    def test_scenario_requires_vms(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(name="s", description="", vms=(), tmem_mb=100)

    def test_duplicate_vm_names_rejected(self):
        vm = VMSpec(name="VM1", ram_mb=256)
        with pytest.raises(ScenarioError):
            ScenarioSpec(name="s", description="", vms=(vm, vm), tmem_mb=100)

    def test_host_memory_must_hold_vms_and_tmem(self):
        vm = VMSpec(name="VM1", ram_mb=1024)
        spec = ScenarioSpec(name="s", description="", vms=(vm,), tmem_mb=1024,
                            host_memory_mb=1024)
        with pytest.raises(ScenarioError):
            spec.effective_host_memory_mb()

    def test_default_host_memory_has_headroom(self):
        vm = VMSpec(name="VM1", ram_mb=1024)
        spec = ScenarioSpec(name="s", description="", vms=(vm,), tmem_mb=512)
        assert spec.effective_host_memory_mb() >= 1024 + 512

    def test_vm_lookup(self):
        spec = scenario_1()
        assert spec.vm("VM2").ram_mb == 1024
        with pytest.raises(ScenarioError):
            spec.vm("VM9")

    def test_ram_pages_uses_units(self):
        vm = VMSpec(name="VM1", ram_mb=1024)
        assert vm.ram_pages(SCENARIO_UNITS) == 4096

    def test_phase_trigger_matching(self):
        trigger = PhaseTrigger(watch_vm="VM1", phase_prefix="alloc-640MB",
                               start_vm="VM3")
        assert trigger.matches("VM1", "alloc-640MB")
        assert not trigger.matches("VM2", "alloc-640MB")
        assert not trigger.matches("VM1", "alloc-512MB")

    def test_with_overrides(self):
        spec = scenario_1().with_overrides(tmem_mb=512)
        assert spec.tmem_mb == 512


class TestPaperScenarios:
    def test_all_scenarios_present(self):
        names = set(all_scenarios())
        assert names == {"scenario-1", "scenario-2", "usemem-scenario", "scenario-3"}

    def test_scenario_by_name_unknown_rejected(self):
        with pytest.raises(ScenarioError):
            scenario_by_name("scenario-9")

    def test_every_scenario_deploys_three_vms(self):
        """Table II: in all cases, we deploy 3 VMs."""
        for spec in all_scenarios().values():
            assert len(spec.vms) == 3

    def test_scenario_1_matches_table2(self):
        spec = scenario_1()
        assert spec.tmem_mb == 1024
        for vm in spec.vms:
            assert vm.ram_mb == 1024 and vm.vcpus == 1
            assert len(vm.jobs) == 2                      # run twice
            assert vm.jobs[1].delay_after_previous == 5.0  # 5 s sleep
            assert all(j.kind == "in-memory-analytics" for j in vm.jobs)

    def test_scenario_2_matches_table2(self):
        spec = scenario_2()
        assert spec.tmem_mb == 1024
        for vm in spec.vms:
            assert vm.ram_mb == 512
            assert vm.jobs[0].kind == "graph-analytics"
        assert spec.vm("VM1").jobs[0].start_at == 0.0
        assert spec.vm("VM3").jobs[0].start_at == 30.0     # 30 s stagger

    def test_usemem_scenario_matches_table2(self):
        spec = usemem_scenario()
        assert spec.tmem_mb == 384                         # only 384 MB enabled
        for vm in spec.vms:
            assert vm.ram_mb == 512
            assert vm.jobs[0].kind == "usemem"
        # VM3 is started by a trigger on VM1's 640 MB allocation...
        assert spec.phase_triggers
        trigger = spec.phase_triggers[0]
        assert trigger.start_vm == "VM3"
        assert "640" in trigger.phase_prefix
        # ...and everything stops when VM3 reaches 768 MB.
        assert spec.stop_trigger is not None
        assert spec.stop_trigger.watch_vm == "VM3"
        assert "768" in spec.stop_trigger.phase_prefix

    def test_scenario_3_matches_table2(self):
        spec = scenario_3()
        assert spec.vm("VM1").ram_mb == 512
        assert spec.vm("VM2").ram_mb == 512
        assert spec.vm("VM3").ram_mb == 1024
        assert spec.vm("VM3").jobs[0].kind == "in-memory-analytics"
        assert spec.vm("VM3").jobs[0].start_at == 30.0

    def test_scale_shrinks_sizes_proportionally(self):
        full = scenario_1(scale=1.0)
        half = scenario_1(scale=0.5)
        assert half.tmem_mb == full.tmem_mb // 2
        assert half.vm("VM1").ram_mb == full.vm("VM1").ram_mb // 2

    def test_scale_must_be_positive(self):
        for factory in (scenario_1, scenario_2, scenario_3, usemem_scenario):
            with pytest.raises(ScenarioError):
                factory(scale=0)

    def test_workloads_overcommit_vm_ram(self):
        """Every scenario must create memory pressure (Section IV)."""
        from repro.scenarios.runner import _WORKLOAD_CLASSES
        from repro.sim.rng import RngFactory

        for spec in all_scenarios().values():
            for vm in spec.vms:
                for job in vm.jobs:
                    cls = _WORKLOAD_CLASSES[job.kind]
                    workload = cls(
                        units=SCENARIO_UNITS,
                        rng=RngFactory(0).stream("check"),
                        **dict(job.params),
                    )
                    assert workload.peak_footprint_pages() > vm.ram_pages(SCENARIO_UNITS)

    def test_paper_policy_list_contains_all_families(self):
        assert "greedy" in PAPER_POLICIES
        assert "no-tmem" in PAPER_POLICIES
        assert any(p.startswith("smart-alloc") for p in PAPER_POLICIES)
        assert "static-alloc" in PAPER_POLICIES and "reconf-static" in PAPER_POLICIES

    def test_describe_is_serialisable(self):
        import json
        for spec in all_scenarios().values():
            json.dumps(spec.describe())
