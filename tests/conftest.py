"""Shared fixtures for the test suite.

Most tests build small systems by hand; these fixtures provide the common
building blocks (a simulation engine, a small hypervisor with a tmem pool,
a registered VM with a frontswap client) at sizes small enough to keep the
whole suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.hypervisor.xen import Hypervisor
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RngFactory
from repro.units import MemoryUnits


@pytest.fixture
def engine() -> SimulationEngine:
    return SimulationEngine()


@pytest.fixture
def config() -> SimulationConfig:
    """Default configuration with true 4 KiB pages."""
    return SimulationConfig()


@pytest.fixture
def coarse_config() -> SimulationConfig:
    """Coarse-page configuration as used by the scenario reproductions."""
    return SimulationConfig(units=MemoryUnits(page_bytes=256 * 1024))


@pytest.fixture
def rng() -> np.random.Generator:
    return RngFactory(1234).stream("tests")


@pytest.fixture
def hypervisor(engine, config) -> Hypervisor:
    """A hypervisor with 4096 pages of host memory and 512 pages of tmem."""
    return Hypervisor(
        engine,
        config,
        host_memory_pages=4096,
        tmem_pool_pages=512,
    )


@pytest.fixture
def registered_vm(hypervisor):
    """A 256-page VM registered with tmem (returns its DomainRecord)."""
    record = hypervisor.create_domain("vm-test", ram_pages=256)
    hypervisor.register_tmem_client(record.vm_id, frontswap=True)
    return record
