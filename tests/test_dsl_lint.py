"""Scenario-DSL lint: positioned diagnostics, suggestions and warnings.

``lint_text``/``lint_file`` never raise — every problem (including YAML
syntax errors) comes back as a :class:`Diagnostic` with a source
position, and warnings are advisory (feasible but suspicious schedules).
"""

from pathlib import Path

from repro.scenarios.dsl import Diagnostic, lint_file, lint_text

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples" / "dsl"


def errors(diags):
    return [d for d in diags if d.severity == "error"]


def warnings(diags):
    return [d for d in diags if d.severity == "warning"]


class TestCleanDocuments:
    def test_family_document_is_clean(self):
        assert lint_text("family: many-vms\nparams: {n: 2}\n") == []

    def test_every_committed_example_is_clean(self):
        paths = sorted(EXAMPLES.glob("*.yml"))
        assert paths, "examples/dsl/ must ship example documents"
        for path in paths:
            diags = lint_file(str(path))
            assert diags == [], f"{path.name}: {[d.format(path.name) for d in diags]}"


class TestPositions:
    def test_diagnostic_points_at_the_offending_key(self):
        diags = lint_text(
            "family: many-vms\n"
            "params: {n: 2}\n"
            "polcy: greedy\n"
        )
        (diag,) = errors(diags)
        assert diag.line == 3
        assert diag.column == 1
        assert diag.path == "polcy"
        assert "did you mean 'policy'" in diag.message

    def test_nested_position(self):
        diags = lint_text(
            """\
scenario: pos
tmem_mb: 64
vms:
  - name: VM1
    ram_mb: 64
    jobs:
      - kind: usemem
        params: {start_mbb: 32, max_mb: 64}
"""
        )
        (diag,) = errors(diags)
        assert diag.path == "vms[0].jobs[0].params.start_mbb"
        assert diag.line == 8
        assert "did you mean 'start_mb'" in diag.message

    def test_format_renders_file_line_col(self):
        diag = Diagnostic(
            severity="error", message="boom", path="vms[0]", line=4, column=3
        )
        assert diag.format("doc.yml") == "doc.yml:4:3: error: boom (at vms[0])"


class TestYamlAndStructure:
    def test_yaml_syntax_error_is_a_positioned_diagnostic(self):
        diags = lint_text("family: [unclosed\n")
        assert len(errors(diags)) == 1
        assert diags[0].line is not None

    def test_duplicate_key(self):
        diags = lint_text("family: many-vms\nfamily: churn\n")
        assert any("duplicate" in d.message for d in errors(diags))

    def test_non_mapping_root(self):
        diags = lint_text("- just\n- a list\n")
        assert len(errors(diags)) == 1

    def test_missing_file_is_an_error_not_a_crash(self, tmp_path):
        diags = lint_file(str(tmp_path / "nope.yml"))
        assert len(errors(diags)) == 1


class TestWarnings:
    def test_schedule_past_deadline_warns(self):
        diags = lint_text(
            """\
scenario: late
tmem_mb: 64
max_duration_s: 60
vms:
  - name: VM1
    ram_mb: 64
    jobs:
      - kind: usemem
        params: {start_mb: 32, max_mb: 64}
        start_at: 120
"""
        )
        assert errors(diags) == []
        assert any("max_duration_s" in d.message for d in warnings(diags))

    def test_fault_window_past_deadline_warns(self):
        diags = lint_text(
            """\
scenario: late-fault
tmem_mb: 64
max_duration_s: 60
vms:
  - name: VM1
    ram_mb: 64
    jobs: [{kind: usemem, params: {start_mb: 32, max_mb: 64}}]
  - name: VM2
    ram_mb: 64
    jobs: [{kind: usemem, params: {start_mb: 32, max_mb: 64}}]
cluster:
  nodes:
    - {name: node1, vms: [VM1], tmem_mb: 64}
    - {name: node2, vms: [VM2], tmem_mb: 64}
  faults: ["node2@30-90:failback=1"]
"""
        )
        assert errors(diags) == []
        assert any(
            "fault window" in d.message and "extends past" in d.message
            for d in warnings(diags)
        )

    def test_missing_trace_file_warns(self, tmp_path):
        doc = tmp_path / "trace.yml"
        doc.write_text(
            """\
scenario: missing-trace
tmem_mb: 64
vms:
  - name: VM1
    ram_mb: 64
    jobs:
      - kind: trace
        params: {path: does-not-exist.jsonl}
"""
        )
        diags = lint_file(str(doc))
        assert errors(diags) == []
        assert any("does-not-exist.jsonl" in d.message for d in warnings(diags))

    def test_warnings_do_not_fail_compilation(self):
        from repro.scenarios.dsl import compile_text

        compiled = compile_text(
            """\
scenario: late
tmem_mb: 64
max_duration_s: 60
vms:
  - name: VM1
    ram_mb: 64
    jobs:
      - kind: usemem
        params: {start_mb: 32, max_mb: 64}
        start_at: 120
"""
        )
        assert compiled.warnings
