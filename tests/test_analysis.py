"""Tests for metrics, figure data extraction, tables and reports."""

import numpy as np
import pytest

from repro.analysis.figures import runtime_figure, tmem_usage_figure, usemem_phase_figure
from repro.analysis.metrics import (
    fairness_over_time,
    improvement_percent,
    jain_fairness,
    mean_fairness,
    policy_comparison,
    runtime_summary,
    speedup,
)
from repro.analysis.report import (
    format_table,
    render_comparison,
    render_figure_series,
    render_runtime_table,
)
from repro.analysis.tables import table1_statistics, table2_scenarios
from repro.errors import AnalysisError
from repro.scenarios.library import scenario_1, usemem_scenario
from repro.scenarios.runner import run_scenario

SCALE = 0.1
SEED = 11


@pytest.fixture(scope="module")
def results():
    spec = scenario_1(scale=SCALE)
    return {
        "greedy": run_scenario(spec, "greedy", seed=SEED),
        "smart-alloc:P=6": run_scenario(spec, "smart-alloc:P=6", seed=SEED),
    }


@pytest.fixture(scope="module")
def usemem_results():
    spec = usemem_scenario(scale=0.25)
    return {"greedy": run_scenario(spec, "greedy", seed=SEED)}


class TestMetrics:
    def test_jain_fairness_equal_shares(self):
        assert jain_fairness([5, 5, 5]) == pytest.approx(1.0)

    def test_jain_fairness_single_holder(self):
        assert jain_fairness([9, 0, 0]) == pytest.approx(1 / 3)

    def test_jain_fairness_all_zero_is_fair(self):
        assert jain_fairness([0, 0, 0]) == 1.0

    def test_jain_fairness_rejects_bad_input(self):
        with pytest.raises(AnalysisError):
            jain_fairness([])
        with pytest.raises(AnalysisError):
            jain_fairness([-1, 2])

    def test_speedup_and_improvement(self):
        assert speedup(100, 50) == pytest.approx(2.0)
        assert improvement_percent(100, 65) == pytest.approx(35.0)
        assert improvement_percent(100, 120) == pytest.approx(-20.0)

    def test_speedup_rejects_non_positive(self):
        with pytest.raises(AnalysisError):
            speedup(0, 1)
        with pytest.raises(AnalysisError):
            improvement_percent(0, 1)

    def test_runtime_summary_structure(self, results):
        summary = runtime_summary(results["greedy"])
        assert set(summary) == {"VM1", "VM2", "VM3"}
        assert set(summary["VM1"]) == {"run1", "run2"}

    def test_fairness_over_time_shape(self, results):
        data = fairness_over_time(results["greedy"])
        assert data.ndim == 2 and data.shape[1] == 2
        assert np.all((data[:, 1] >= 0) & (data[:, 1] <= 1.0 + 1e-9))

    def test_mean_fairness_bounds(self, results):
        value = mean_fairness(results["greedy"])
        assert 0.0 < value <= 1.0

    def test_mean_fairness_skip_leading_validation(self, results):
        with pytest.raises(AnalysisError):
            mean_fairness(results["greedy"], skip_leading=10**6)

    def test_policy_comparison(self, results):
        comparison = policy_comparison(results, vm_name="VM1", run_index=0)
        assert set(comparison) == set(results)
        assert all(v > 0 for v in comparison.values())


class TestFigures:
    def test_runtime_figure_one_series_per_policy(self, results):
        figure = runtime_figure(results)
        assert set(figure) == set(results)
        series = figure["greedy"]
        assert len(series.y) == 6  # 3 VMs x 2 runs
        assert len(series.x_labels) == 6

    def test_runtime_figure_rejects_empty(self):
        with pytest.raises(AnalysisError):
            runtime_figure({})

    def test_tmem_usage_figure_has_vm_series(self, results):
        figure = tmem_usage_figure(results["greedy"])
        for name in ("VM1", "VM2", "VM3"):
            assert name in figure
            assert len(figure[name].x) == len(figure[name].y)

    def test_tmem_usage_figure_includes_targets_for_managed_policy(self, results):
        figure = tmem_usage_figure(results["smart-alloc:P=6"])
        assert any(name.startswith("target-") for name in figure)

    def test_usemem_phase_figure(self, usemem_results):
        figure = usemem_phase_figure(usemem_results)
        assert "greedy" in figure
        vm1 = figure["greedy"]["VM1"]
        assert vm1  # at least one allocation phase recorded
        assert all(phase.startswith("alloc-") for phase in vm1)
        assert all(duration >= 0 for duration in vm1.values())


class TestTables:
    def test_table1_lists_paper_statistics(self):
        rows = table1_statistics()
        names = {row["statistic"] for row in rows}
        assert "vm_data_hyp[id].tmem_used" in names
        assert "vm_data_hyp[id].mm_target" in names
        assert "memstats.vm[i].puts_succ" in names
        assert "mm_out[i].mm_target" in names
        # Every implemented row points at a real attribute.
        for row in rows:
            assert row["description"]

    def test_table2_matches_scenario_library(self):
        rows = table2_scenarios()
        names = {row["scenario"] for row in rows}
        assert names == {"scenario-1", "scenario-2", "usemem-scenario", "scenario-3"}
        usemem_row = next(r for r in rows if r["scenario"] == "usemem-scenario")
        assert usemem_row["tmem_mb"] == 384


class TestReports:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [30, 40]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_runtime_table_contains_policies_and_vms(self, results):
        text = render_runtime_table(results, title="Scenario 1")
        assert "Scenario 1" in text
        assert "greedy" in text and "smart-alloc:P=6" in text
        assert "VM1/run1" in text and "VM3/run2" in text

    def test_render_runtime_table_empty(self):
        assert "(no results)" in render_runtime_table({})

    def test_render_figure_series(self, results):
        text = render_figure_series(tmem_usage_figure(results["greedy"]),
                                    title="tmem usage")
        assert "tmem usage" in text
        assert "VM1" in text

    def test_render_comparison(self, results):
        text = render_comparison(results, baseline="greedy", vm_name="VM1")
        assert "smart-alloc:P=6" in text
        assert "vs greedy" in text

    def test_render_comparison_missing_baseline(self, results):
        assert "missing" in render_comparison(results, baseline="nope", vm_name="VM1")
