"""Property tests for the slab engine's ordering invariants.

The engine overhaul (slab events, tuple heap entries, native recurring
timers, inline fast-forward) must preserve the discrete-event contract:

* events at the same timestamp fire in priority-then-insertion order;
* a cancelled event never fires (one-shot or recurring);
* ``run(until=...)`` leaves the head event queued, and a later ``run()``
  picks up exactly where the bounded run stopped;
* a driver that advances via :meth:`try_fast_forward` observes the same
  execution sequence as one that schedules every step through the heap.

Each property is exercised with fast-forward enabled and disabled.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sim.engine import SimulationEngine
from repro.sim.events import EventPriority

# Times are multiples of 0.5 so that equal timestamps actually occur.
_times = st.integers(min_value=0, max_value=40).map(lambda n: n * 0.5)
_priorities = st.sampled_from(list(EventPriority))
_events = st.lists(st.tuples(_times, _priorities), min_size=1, max_size=40)


def _drive_chain(engine: SimulationEngine, delays, log, *, label="step"):
    """A VM-driver-shaped chain: fast-forward when granted, else schedule."""
    iterator = iter(delays)

    def step() -> None:
        while True:
            log.append((label, engine.now))
            try:
                delay = next(iterator)
            except StopIteration:
                return
            if engine.try_fast_forward(engine.now + delay):
                continue
            engine.schedule_call_after(
                delay, step, priority=EventPriority.WORKLOAD, label=label
            )
            return

    engine.schedule_call_after(
        0.0, step, priority=EventPriority.WORKLOAD, label=label
    )


class TestOrderingInvariants:
    @given(events=_events, fast_forward=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_same_timestamp_priority_then_insertion(self, events, fast_forward):
        engine = SimulationEngine(fast_forward=fast_forward)
        fired = []
        for insertion, (time, priority) in enumerate(events):
            engine.schedule_at(
                time,
                lambda t=time, p=priority, i=insertion: fired.append((t, int(p), i)),
                priority=priority,
            )
        engine.run()
        assert fired == sorted(fired)
        assert len(fired) == len(events)

    @given(
        events=_events,
        cancel_mask=st.lists(st.booleans(), min_size=40, max_size=40),
        fast_forward=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_cancellation_never_fires(self, events, cancel_mask, fast_forward):
        engine = SimulationEngine(fast_forward=fast_forward)
        fired = []
        handles = []
        for index, (time, priority) in enumerate(events):
            handles.append(
                engine.schedule_at(
                    time, lambda i=index: fired.append(i), priority=priority
                )
            )
        cancelled = {
            index
            for index, handle in enumerate(handles)
            if cancel_mask[index % len(cancel_mask)]
        }
        for index in cancelled:
            handles[index].cancel()
            handles[index].cancel()  # double-cancel must stay a no-op
        engine.run()
        assert cancelled.isdisjoint(fired)
        assert len(fired) == len(events) - len(cancelled)
        assert engine.pending_events == 0

    @given(
        interval=st.integers(min_value=1, max_value=5).map(float),
        cancel_at=st.integers(min_value=1, max_value=10).map(float),
        fast_forward=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_cancelled_recurring_timer_never_fires_again(
        self, interval, cancel_at, fast_forward
    ):
        engine = SimulationEngine(fast_forward=fast_forward)
        ticks = []
        timer = engine.schedule_recurring(interval, lambda: ticks.append(engine.now))
        engine.schedule_at(cancel_at, timer.cancel, priority=EventPriority.LOW)
        engine.run(until=100.0)
        assert all(t <= cancel_at for t in ticks)
        expected = [
            interval * k
            for k in range(1, int(cancel_at / interval) + 2)
            if interval * k <= cancel_at
        ]
        assert ticks == expected

    @given(events=_events, fast_forward=st.booleans(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_run_until_leaves_head_queued(self, events, fast_forward, data):
        engine = SimulationEngine(fast_forward=fast_forward)
        fired = []
        for time, priority in events:
            engine.schedule_at(
                time, lambda t=time: fired.append(t), priority=priority
            )
        times = sorted(t for t, _ in events)
        until = data.draw(
            st.sampled_from(times) | st.just(times[len(times) // 2] + 0.25)
        )
        engine.run(until=until)
        early = [t for t in times if t <= until]
        assert fired == early
        assert engine.pending_events == len(times) - len(early)
        # The remainder is still queued and runs on the next call.
        engine.run()
        assert fired == times
        assert engine.pending_events == 0


class TestFastForwardEquivalence:
    @given(
        delays=st.lists(
            st.integers(min_value=0, max_value=8).map(lambda n: n * 0.25),
            min_size=1,
            max_size=30,
        ),
        background=_events,
        until=st.none() | st.integers(min_value=1, max_value=30).map(float),
    )
    @settings(max_examples=60, deadline=None)
    def test_chain_observes_identical_sequence(self, delays, background, until):
        logs = {}
        finals = {}
        for fast_forward in (False, True):
            engine = SimulationEngine(fast_forward=fast_forward)
            log = []
            _drive_chain(engine, delays, log)
            for time, priority in background:
                engine.schedule_at(
                    time,
                    lambda log=log, t=time, e=engine: log.append(("bg", t, e.now)),
                    priority=priority,
                )
            engine.run(until=until)
            engine.run()  # drain anything a bounded first run left queued
            logs[fast_forward] = log
            finals[fast_forward] = engine.now
        assert logs[True] == logs[False]
        assert finals[True] == finals[False]

    @given(
        delays=st.lists(
            st.integers(min_value=1, max_value=8).map(lambda n: n * 0.25),
            min_size=1,
            max_size=20,
        ),
        max_events=st.integers(min_value=1, max_value=25),
    )
    @settings(max_examples=40, deadline=None)
    def test_max_events_budget_is_identical(self, delays, max_events):
        """The livelock guard fires after the same number of callbacks."""

        from repro.errors import SimulationError

        outcomes = {}
        for fast_forward in (False, True):
            engine = SimulationEngine(fast_forward=fast_forward)
            log = []
            _drive_chain(engine, delays, log)
            raised = False
            try:
                engine.run(max_events=max_events)
            except SimulationError:
                raised = True
            outcomes[fast_forward] = (list(log), raised, engine.events_executed)
        assert outcomes[True] == outcomes[False]

    def test_queue_inspecting_stop_when_is_boundary_equivalent(self):
        """A predicate that is only *transiently* true mid-callback must
        not truncate a fast-forwarded run: stop_when is always decided
        at the event boundary, with the continuation already queued."""
        logs = {}
        for fast_forward in (False, True):
            engine = SimulationEngine(fast_forward=fast_forward)
            log = []
            _drive_chain(engine, [1.0, 1.0, 1.0], log)
            # pending_events == 0 is transiently true inside the chain's
            # callback (the next step is not scheduled yet), but false
            # at every real event boundary until the chain ends.
            engine.run(stop_when=lambda: engine.pending_events == 0)
            logs[fast_forward] = log
        assert logs[True] == logs[False]
        assert [t for _, t in logs[True]] == [0.0, 1.0, 2.0, 3.0]

    @given(
        delays=st.lists(
            st.integers(min_value=0, max_value=8).map(lambda n: n * 0.25),
            min_size=1,
            max_size=30,
        ),
        stop_after=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_stop_when_boundary_is_respected(self, delays, stop_after):
        """stop_when halts at the same event boundary with ff on and off."""
        logs = {}
        for fast_forward in (False, True):
            engine = SimulationEngine(fast_forward=fast_forward)
            log = []
            _drive_chain(engine, delays, log)
            engine.run(stop_when=lambda log=log: len(log) >= stop_after)
            logs[fast_forward] = list(log)
        assert logs[True] == logs[False]


class TestDrainLabels:
    def test_drain_labels_orders_by_time_priority_sequence(self):
        engine = SimulationEngine()
        engine.schedule_at(2.0, lambda: None, label="late")
        engine.schedule_at(1.0, lambda: None, priority=EventPriority.WORKLOAD,
                           label="w1")
        engine.schedule_at(1.0, lambda: None, priority=EventPriority.TIMER,
                           label="timer")
        engine.schedule_at(1.0, lambda: None, priority=EventPriority.WORKLOAD,
                           label="w2")
        dead = engine.schedule_at(0.5, lambda: None, label="dead")
        dead.cancel()
        engine.schedule_recurring(1.5, lambda: None, label="recurring")
        assert list(engine.drain_labels()) == [
            "timer", "w1", "w2", "recurring", "late",
        ]

    def test_drain_labels_is_deterministic_across_heap_layouts(self):
        """The same live set drains identically however it was built."""
        import random

        entries = [(float(t), p, f"e{t}-{int(p)}-{i}")
                   for i, (t, p) in enumerate(
                       (t, p) for t in range(5) for p in EventPriority)]
        baseline = None
        for seed in range(5):
            shuffled = entries[:]
            random.Random(seed).shuffle(shuffled)
            engine = SimulationEngine()
            by_label = {}
            for time, priority, label in shuffled:
                by_label[label] = engine.schedule_at(
                    time, lambda: None, priority=priority, label=label
                )
            drained = list(engine.drain_labels())
            # Ties (same time, same priority) break by insertion order,
            # which differs per shuffle — compare the (time, priority)
            # projection, which must be identically sorted every time.
            projection = [
                (by_label[label].time, by_label[label].priority)
                for label in drained
            ]
            assert projection == sorted(projection)
            if baseline is None:
                baseline = projection
            else:
                assert projection == baseline
