"""Tests for the discrete-event simulation engine."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ClockError, EventError, SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.events import Event, EventPriority


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert SimulationEngine().now == 0.0

    def test_schedule_and_run_single_event(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(5.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [5.0]
        assert engine.now == 5.0

    def test_schedule_after_uses_relative_delay(self):
        engine = SimulationEngine()
        engine.schedule_at(2.0, lambda: engine.schedule_after(3.0, lambda: None))
        engine.run()
        assert engine.now == pytest.approx(5.0)

    def test_cannot_schedule_in_the_past(self):
        engine = SimulationEngine()
        engine.schedule_at(10.0, lambda: None)
        engine.run()
        with pytest.raises(ClockError):
            engine.schedule_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(EventError):
            SimulationEngine().schedule_after(-1.0, lambda: None)

    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule_at(3.0, lambda: order.append(3))
        engine.schedule_at(1.0, lambda: order.append(1))
        engine.schedule_at(2.0, lambda: order.append(2))
        engine.run()
        assert order == [1, 2, 3]

    def test_same_time_orders_by_priority_then_fifo(self):
        engine = SimulationEngine()
        order = []
        engine.schedule_at(1.0, lambda: order.append("n1"), priority=EventPriority.NORMAL)
        engine.schedule_at(1.0, lambda: order.append("t"), priority=EventPriority.TIMER)
        engine.schedule_at(1.0, lambda: order.append("n2"), priority=EventPriority.NORMAL)
        engine.run()
        assert order == ["t", "n1", "n2"]

    def test_cancelled_event_does_not_run(self):
        engine = SimulationEngine()
        fired = []
        event = engine.schedule_at(1.0, lambda: fired.append(1))
        event.cancel()
        engine.run()
        assert fired == []

    def test_pending_events_counts_live_events_only(self):
        engine = SimulationEngine()
        e1 = engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        e1.cancel()
        assert engine.pending_events == 1


class TestRunControls:
    def test_until_stops_before_later_events(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == pytest.approx(5.0)
        # The 10.0 event is still queued and runs on the next call.
        engine.run()
        assert fired == [1, 10]

    def test_event_exactly_at_until_still_runs(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(5.0, lambda: fired.append(5))
        engine.run(until=5.0)
        assert fired == [5]

    def test_stop_when_predicate(self):
        engine = SimulationEngine()
        fired = []
        for t in (1.0, 2.0, 3.0):
            engine.schedule_at(t, lambda t=t: fired.append(t))
        engine.run(stop_when=lambda: len(fired) >= 2)
        assert fired == [1.0, 2.0]

    def test_max_events_guard_raises(self):
        engine = SimulationEngine()

        def reschedule():
            engine.schedule_after(1.0, reschedule)

        engine.schedule_after(1.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run(max_events=10)

    def test_stop_requests_halt(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(1.0, lambda: (fired.append(1), engine.stop()))
        engine.schedule_at(2.0, lambda: fired.append(2))
        engine.run()
        assert fired == [1]

    def test_run_is_not_reentrant(self):
        engine = SimulationEngine()

        def nested():
            with pytest.raises(SimulationError):
                engine.run()

        engine.schedule_at(1.0, nested)
        engine.run()


class TestRecurring:
    def test_recurring_fires_at_interval(self):
        engine = SimulationEngine()
        times = []
        engine.schedule_recurring(1.0, lambda: times.append(engine.now))
        engine.run(until=3.5)
        assert times == [1.0, 2.0, 3.0]

    def test_recurring_start_offset(self):
        engine = SimulationEngine()
        times = []
        engine.schedule_recurring(1.0, lambda: times.append(engine.now), start_offset=0.5)
        engine.run(until=2.6)
        assert times == [0.5, 1.5, 2.5]

    def test_recurring_cancel_stops_future_firings(self):
        engine = SimulationEngine()
        times = []
        cancel = engine.schedule_recurring(1.0, lambda: times.append(engine.now))
        engine.schedule_at(2.5, cancel)
        engine.run(until=10.0)
        assert times == [1.0, 2.0]

    def test_recurring_rejects_non_positive_interval(self):
        with pytest.raises(EventError):
            SimulationEngine().schedule_recurring(0.0, lambda: None)

    def test_events_executed_counter(self):
        engine = SimulationEngine()
        engine.schedule_recurring(1.0, lambda: None)
        engine.run(until=4.5)
        assert engine.events_executed == 4

    def test_raising_callback_retires_timer_consistently(self):
        """A timer whose callback raises must not leak the live count."""
        engine = SimulationEngine()

        def boom():
            raise RuntimeError("tick failed")

        timer = engine.schedule_recurring(1.0, boom)
        with pytest.raises(RuntimeError):
            engine.run()
        # The timer is dead, the counters are consistent, and the engine
        # remains usable.
        assert engine.pending_events == 0
        timer.cancel()  # no-op, must not corrupt anything
        assert engine.pending_events == 0
        fired = []
        engine.schedule_at(2.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [2.0]

    def test_cancel_from_inside_timer_callback(self):
        engine = SimulationEngine()
        ticks = []

        def tick():
            ticks.append(engine.now)
            if len(ticks) == 2:
                timer.cancel()

        timer = engine.schedule_recurring(1.0, tick)
        engine.run(until=10.0)
        assert ticks == [1.0, 2.0]
        assert engine.pending_events == 0


class TestEventOrdering:
    def test_event_create_assigns_increasing_sequence(self):
        a = Event.create(1.0, lambda: None)
        b = Event.create(1.0, lambda: None)
        assert b.sequence > a.sequence

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=50))
    def test_clock_is_monotonic_for_any_schedule(self, times):
        engine = SimulationEngine()
        observed = []
        for t in times:
            engine.schedule_at(t, lambda: observed.append(engine.now))
        engine.run()
        assert observed == sorted(observed)
        assert len(observed) == len(times)


class TestIntrospectionFastPaths:
    def test_peek_time_skips_cancelled_heads(self):
        engine = SimulationEngine()
        early = engine.schedule_at(1.0, lambda: None)
        mid = engine.schedule_at(2.0, lambda: None)
        engine.schedule_at(3.0, lambda: None, label="live")
        early.cancel()
        mid.cancel()
        assert engine.peek_time() == 3.0
        assert engine.pending_events == 1

    def test_peek_time_empty_after_all_cancelled(self):
        engine = SimulationEngine()
        event = engine.schedule_at(1.0, lambda: None)
        event.cancel()
        assert engine.peek_time() is None
        assert engine.pending_events == 0

    def test_pending_events_is_a_live_counter(self):
        engine = SimulationEngine()
        events = [engine.schedule_at(float(i + 1), lambda: None) for i in range(5)]
        assert engine.pending_events == 5
        events[0].cancel()
        events[0].cancel()  # double-cancel must not double-decrement
        assert engine.pending_events == 4
        engine.run()
        assert engine.pending_events == 0

    def test_cancel_after_execution_does_not_corrupt_counter(self):
        engine = SimulationEngine()
        event = engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        engine.step()
        event.cancel()  # already ran; must be a no-op for the counter
        assert engine.pending_events == 1

    def test_drain_labels_lists_live_events_in_order(self):
        engine = SimulationEngine()
        engine.schedule_at(2.0, lambda: None, label="b")
        dead = engine.schedule_at(1.5, lambda: None, label="dead")
        engine.schedule_at(1.0, lambda: None, label="a")
        dead.cancel()
        assert list(engine.drain_labels()) == ["a", "b"]
