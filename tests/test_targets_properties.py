"""Property-style tests for the rounding invariants of repro.core.targets.

Equation 1 of the paper requires the per-VM targets to sum *exactly* to
the pool capacity — largest-remainder rounding exists precisely so no
page is stranded and no page is invented.  These tests sweep randomized
and adversarial inputs (remainders, zero capacities, zero-valued
targets, huge disparities) and assert the invariants hold everywhere.
The same helpers back the cluster coordinator's capacity splits, so
these invariants now protect two layers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stats import TargetVector
from repro.core.targets import (
    cap_targets,
    equal_share,
    normalize_targets,
    proportional_scale,
)
from repro.errors import PolicyError


def random_cases(seed: int, count: int):
    """Deterministic stream of (vm_ids, totals, raw targets) cases."""
    rng = np.random.default_rng(seed)
    for _ in range(count):
        n = int(rng.integers(1, 12))
        vm_ids = sorted(
            int(v) for v in rng.choice(2000, size=n, replace=False)
        )
        total = int(rng.integers(0, 100_000))
        values = rng.integers(0, 50_000, size=n)
        yield vm_ids, total, {vm: int(v) for vm, v in zip(vm_ids, values)}


class TestEqualShareInvariants:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_sums_exactly_to_capacity(self, seed):
        for vm_ids, total, _ in random_cases(seed, 200):
            vector = equal_share(vm_ids, total)
            assert vector.total() == total
            assert sorted(vm for vm, _ in vector.items()) == vm_ids

    @pytest.mark.parametrize("seed", [6, 7, 8])
    def test_shares_differ_by_at_most_one_page(self, seed):
        for vm_ids, total, _ in random_cases(seed, 200):
            values = [value for _, value in equal_share(vm_ids, total).items()]
            assert max(values) - min(values) <= 1
            assert min(values) >= 0

    def test_remainder_goes_to_lowest_ids(self):
        vector = equal_share([5, 1, 9], 11)  # 3 VMs, remainder 2
        assert dict(vector.items()) == {1: 4, 5: 4, 9: 3}

    def test_exhaustive_small_cases(self):
        for n in range(1, 7):
            vm_ids = list(range(1, n + 1))
            for total in range(0, 4 * n + 1):
                vector = equal_share(vm_ids, total)
                assert vector.total() == total

    def test_zero_capacity(self):
        vector = equal_share([1, 2, 3], 0)
        assert vector.total() == 0
        assert all(value == 0 for _, value in vector.items())

    def test_no_vms(self):
        assert equal_share([], 512).total() == 0

    def test_duplicate_ids_collapse(self):
        vector = equal_share([2, 2, 3], 10)
        assert sorted(vm for vm, _ in vector.items()) == [2, 3]
        assert vector.total() == 10

    def test_negative_capacity_rejected(self):
        with pytest.raises(PolicyError):
            equal_share([1], -1)


class TestProportionalScaleInvariants:
    @pytest.mark.parametrize("seed", [11, 12, 13, 14, 15])
    def test_sums_exactly_to_capacity(self, seed):
        for _, total, raw in random_cases(seed, 200):
            scaled = proportional_scale(TargetVector(raw), total)
            assert scaled.total() == total

    @pytest.mark.parametrize("seed", [16, 17, 18])
    def test_rounding_error_below_one_page(self, seed):
        """Largest-remainder rounding never drifts a share by >= 1 page."""
        for _, total, raw in random_cases(seed, 100):
            raw_sum = sum(raw.values())
            if raw_sum == 0:
                continue
            scaled = proportional_scale(TargetVector(raw), total)
            for vm_id, value in scaled.items():
                exact = total * raw[vm_id] / raw_sum
                assert abs(value - exact) < 1.0

    def test_all_zero_targets_fall_back_to_equal_split(self):
        scaled = proportional_scale(TargetVector({1: 0, 2: 0, 3: 0}), 10)
        assert scaled.total() == 10
        values = [value for _, value in scaled.items()]
        assert max(values) - min(values) <= 1

    def test_zero_capacity_zeroes_everything(self):
        scaled = proportional_scale(TargetVector({1: 7, 2: 3}), 0)
        assert scaled.total() == 0
        assert all(value == 0 for _, value in scaled.items())

    def test_huge_disparity_keeps_small_share_nonnegative(self):
        scaled = proportional_scale(TargetVector({1: 10**9, 2: 1}), 1000)
        assert scaled.total() == 1000
        assert all(value >= 0 for _, value in scaled.items())

    def test_scale_up_preserves_order(self):
        raw = {1: 10, 2: 30, 3: 60}
        scaled = proportional_scale(TargetVector(raw), 10_000)
        values = dict(scaled.items())
        assert values[1] <= values[2] <= values[3]
        assert scaled.total() == 10_000

    def test_negative_capacity_rejected(self):
        with pytest.raises(PolicyError):
            proportional_scale(TargetVector({1: 1}), -5)


class TestCapAndNormalizeInvariants:
    @pytest.mark.parametrize("seed", [21, 22, 23])
    def test_cap_never_exceeds_capacity(self, seed):
        for _, total, raw in random_cases(seed, 150):
            capped = cap_targets(TargetVector(raw), total)
            assert capped.total() <= max(total, sum(raw.values()))
            if sum(raw.values()) > total:
                assert capped.total() == total
            else:
                assert dict(capped.items()) == raw

    @pytest.mark.parametrize("seed", [24, 25, 26])
    def test_normalize_hits_capacity_exactly(self, seed):
        for _, total, raw in random_cases(seed, 150):
            normalized = normalize_targets(TargetVector(raw), total)
            assert normalized.total() == total

    def test_normalize_empty_vector_is_empty(self):
        assert normalize_targets(TargetVector(), 100).total() == 0
