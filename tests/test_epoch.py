"""Epoch cluster engine (PR 8): determinism and shard invariance.

The contract of ``cluster_engine="epoch"`` is weaker than the exact
sharded runner's (results are *not* bit-identical to the shared engine)
but strict on its own terms: for the same seed and topology the
``aggregate_fingerprint()`` must be identical regardless of the shard
count, the scheduling of the shard workers, and whether the shards run
inline or in real spawned processes.  The property tests here randomize
coupled topology shape, seed and policy and assert exactly that;
dedicated tests cover engine selection, the conservative window size,
the fallback reasons, and the driver-side coordinator bookkeeping.
"""

from __future__ import annotations

import dataclasses
import types

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.epoch import (
    CLUSTER_ENGINES,
    epoch_fallback_reason,
    epoch_window_s,
    resolve_cluster_engine,
)
from repro.cluster.sharded import (
    ShardedClusterRunner,
    run_scenario_sharded,
)
from repro.errors import ClusterError
from repro.scenarios.registry import scenario_by_name
from repro.scenarios.runner import run_scenario

SCALE = 0.05
SEED = 2019

#: Coupled families the epoch engine parallelizes (remote spill +
#: coordinator; hot-node imbalance; contended interconnect).
COUPLED = [
    "cluster:nodes={n},vms_per_node={v}",
    "hotnode:nodes={n}",
    "contended:nodes={n}",
]


def _epoch_run(spec, policy, *, shards, seed=SEED, inline=True):
    return run_scenario_sharded(
        spec,
        policy,
        shards=shards,
        seed=seed,
        inline=inline,
        cluster_engine="epoch",
    )


# ---------------------------------------------------------------------------
# engine selection
# ---------------------------------------------------------------------------
class TestEngineSelection:
    def test_resolve_defaults_to_exact(self):
        assert resolve_cluster_engine(None) == "exact"
        assert resolve_cluster_engine("exact") == "exact"
        assert resolve_cluster_engine("epoch") == "epoch"
        assert set(CLUSTER_ENGINES) == {"exact", "epoch"}

    @pytest.mark.parametrize("bad", ["Epoch", "relaxed", "", "auto"])
    def test_resolve_rejects_unknown(self, bad):
        with pytest.raises(ClusterError):
            resolve_cluster_engine(bad)

    def test_epoch_parallelizes_coupled_topology(self):
        spec = scenario_by_name("cluster:nodes=3", scale=SCALE)
        runner = ShardedClusterRunner(
            spec, "greedy", shards=2, inline=True, cluster_engine="epoch"
        )
        assert runner.epoch_parallel
        assert not runner.exact
        assert len(runner.buckets) == 2

    def test_epoch_single_shard_still_runs_window_protocol(self):
        """The shard count must never change epoch results, so one shard
        runs the same window protocol as many."""
        spec = scenario_by_name("cluster:nodes=3", scale=SCALE)
        runner = ShardedClusterRunner(
            spec, "greedy", shards=1, inline=True, cluster_engine="epoch"
        )
        assert runner.epoch_parallel
        assert not runner.exact

    def test_decoupled_topology_keeps_bit_exact_path(self):
        """Decoupled nodes don't need windows; they keep the exact
        parallel path (and its bit-identity to the shared engine)."""
        spec = scenario_by_name("shard:nodes=2", scale=SCALE)
        runner = ShardedClusterRunner(
            spec, "greedy", shards=2, inline=True, cluster_engine="epoch"
        )
        assert not runner.epoch_parallel
        shared = run_scenario(spec, "greedy", seed=SEED)
        result = ShardedClusterRunner(
            spec, "greedy", shards=2, seed=SEED, inline=True,
            cluster_engine="epoch",
        ).run()
        assert result.fingerprint() == shared.fingerprint()

    def test_failures_fall_back_to_exact(self):
        spec = scenario_by_name("failover", scale=SCALE)
        assert "failures" in epoch_fallback_reason(spec)
        runner = ShardedClusterRunner(
            spec, "greedy", shards=2, seed=SEED, inline=True,
            cluster_engine="epoch",
        )
        assert not runner.epoch_parallel
        assert runner.exact
        shared = run_scenario(spec, "greedy", seed=SEED)
        assert runner.run().fingerprint() == shared.fingerprint()

    def test_migrations_and_stop_triggers_fall_back(self):
        from repro.scenarios.spec import PhaseTrigger

        migrate = scenario_by_name("migrate", scale=SCALE)
        assert "migration" in epoch_fallback_reason(migrate)
        spec = scenario_by_name("cluster:nodes=2", scale=SCALE)
        stopper = dataclasses.replace(
            spec,
            stop_trigger=PhaseTrigger(watch_vm="n1.VM1", phase_prefix="t"),
        )
        assert "stop trigger" in epoch_fallback_reason(stopper)

    def test_parallelizable_topologies_have_no_fallback_reason(self):
        for name in ("cluster:nodes=3", "hotnode:", "contended:"):
            spec = scenario_by_name(name, scale=SCALE)
            assert epoch_fallback_reason(spec) is None, name


# ---------------------------------------------------------------------------
# window size
# ---------------------------------------------------------------------------
class TestWindowSize:
    def test_window_from_latency_and_rebalance_interval(self):
        spec = scenario_by_name("cluster:nodes=3", scale=SCALE)
        window = epoch_window_s(spec.topology)
        assert window > 0
        latency = spec.topology.interconnect_latency_s
        interval = spec.topology.rebalance_interval_s
        assert window >= latency
        assert window >= interval / 2 or window == 1.0

    def test_window_floor_guards_degenerate_topologies(self):
        """ClusterTopology validates its intervals, so the floor can
        only trigger on hand-built topology-likes — but it must hold."""
        degenerate = types.SimpleNamespace(
            interconnect_latency_s=0.0, rebalance_interval_s=0.0
        )
        assert epoch_window_s(degenerate) == 1.0


# ---------------------------------------------------------------------------
# the determinism contract (the core guarantee)
# ---------------------------------------------------------------------------
class TestEpochInvariance:
    @settings(deadline=None, max_examples=5)
    @given(
        family=st.sampled_from(COUPLED),
        nodes=st.integers(2, 4),
        vms=st.integers(1, 2),
        seed=st.integers(0, 2**31 - 1),
        policy=st.sampled_from(["greedy", "smart-alloc:P=2"]),
    )
    def test_fingerprint_invariant_across_shard_counts(
        self, family, nodes, vms, seed, policy
    ):
        """Same seed + topology => same aggregate fingerprint at 1, 2
        and 4 shards, and on a rerun (no hidden per-run state)."""
        spec = scenario_by_name(
            family.format(n=nodes, v=vms), scale=SCALE
        )
        fingerprints = {
            shards: _epoch_run(
                spec, policy, shards=shards, seed=seed
            ).aggregate_fingerprint()
            for shards in (1, 2, 4)
        }
        assert len(set(fingerprints.values())) == 1, fingerprints
        rerun = _epoch_run(spec, policy, shards=2, seed=seed)
        assert rerun.aggregate_fingerprint() == fingerprints[2]

    @settings(deadline=None, max_examples=3)
    @given(
        family=st.sampled_from(COUPLED),
        nodes=st.integers(2, 3),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_inline_matches_process_workers(self, family, nodes, seed):
        """Real spawned shard workers produce the same fingerprint as
        the in-process tasks (scheduling cannot leak into results)."""
        spec = scenario_by_name(family.format(n=nodes, v=1), scale=SCALE)
        inline = _epoch_run(spec, "greedy", shards=2, seed=seed)
        procs = _epoch_run(spec, "greedy", shards=2, seed=seed, inline=False)
        assert (
            procs.aggregate_fingerprint() == inline.aggregate_fingerprint()
        )

    def test_epoch_result_carries_cluster_bookkeeping(self):
        """Driver-side coordinator/link bookkeeping lands in the result
        like the shared engine's does."""
        spec = scenario_by_name("contended:nodes=3", scale=SCALE)
        result = _epoch_run(spec, "greedy", shards=2)
        assert result.cluster is not None
        assert "capacity_moves" in result.cluster
        assert result.cluster["interconnect_pages_moved"] >= 0
        assert "links" in result.cluster
        assert "max_queue_depth" in result.cluster

    def test_no_tmem_policy_is_decoupled_under_epoch(self):
        """no-tmem disables spill; the topology decouples and keeps the
        bit-exact path even under the epoch engine."""
        spec = scenario_by_name("cluster:nodes=2", scale=SCALE)
        runner = ShardedClusterRunner(
            spec, "no-tmem", shards=2, seed=SEED, inline=True,
            cluster_engine="epoch",
        )
        assert not runner.epoch_parallel
        shared = run_scenario(spec, "no-tmem", seed=SEED)
        assert runner.run().fingerprint() == shared.fingerprint()
