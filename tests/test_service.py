"""HTTP sweep service: server/worker lifecycle over real loopback HTTP.

Uses a stub executor (one real simulation result, reused) so the tests
exercise the distributed machinery — leases, heartbeats, duplicate
submissions, expiry reassignment, drain — rather than simulation speed.
"""

import threading
import time

import pytest

from repro.errors import ProtocolError, TransportError, WireError
from repro.experiments import (
    ExperimentPoint,
    HttpTransport,
    LeaseQueue,
    SweepClient,
    SweepServer,
    SweepSpec,
    Worker,
    execute_point,
)
from repro.serialize import wire_decode, wire_encode

TINY = SweepSpec(
    scenarios=("usemem-scenario",),
    policies=("greedy", "no-tmem"),
    seeds=(1, 2),
    scales=(0.1,),
)


@pytest.fixture(scope="module")
def canned_result():
    """One real ScenarioResult, computed once for the whole module."""
    return execute_point(TINY.expand()[0])


@pytest.fixture
def server_factory():
    servers = []

    def build(points, **kwargs):
        queue = LeaseQueue(
            points,
            lease_expiry_s=kwargs.pop("lease_expiry_s", 10.0),
            max_attempts=kwargs.pop("max_attempts", 3),
            backoff_base_s=kwargs.pop("backoff_base_s", 0.01),
            backoff_jitter=0.0,
        )
        server = SweepServer(queue, **kwargs).start()
        servers.append(server)
        return server

    yield build
    for server in servers:
        server.stop()


def make_client(server, worker_id="w0", **kwargs):
    kwargs.setdefault("max_retries", 2)
    kwargs.setdefault("backoff_base_s", 0.01)
    return SweepClient(
        HttpTransport(server.url, timeout_s=5.0), worker_id, **kwargs
    )


class TestServerEndpoints:
    def test_lease_result_status_happy_path(self, server_factory, canned_result):
        points = TINY.expand()[:2]
        recorded = []
        server = server_factory(
            list(points), on_result=lambda p, r: recorded.append(p)
        )
        client = make_client(server)

        reply = client.lease()
        assert reply["lease"]["point"] == points[0].to_dict()
        assert reply["lease"]["attempt"] == 1
        ack = client.submit_result(
            reply["lease"]["lease_id"], points[0], canned_result
        )
        assert ack == {"recorded": True, "duplicate": False}
        assert recorded == [points[0]]

        status = client.status()
        assert status["total"] == 2
        assert status["counts"]["done"] == 1
        assert not status["done"]

    def test_duplicate_submission_acknowledged_not_rerecorded(
        self, server_factory, canned_result
    ):
        point = TINY.expand()[0]
        recorded = []
        server = server_factory([point], on_result=lambda p, r: recorded.append(p))
        client = make_client(server)
        lease = client.lease()["lease"]
        first = client.submit_result(lease["lease_id"], point, canned_result)
        second = client.submit_result(lease["lease_id"], point, canned_result)
        assert first == {"recorded": True, "duplicate": False}
        assert second == {"recorded": False, "duplicate": True}
        assert recorded == [point]  # on_result fired exactly once

    def test_lease_expiry_reassigns_to_other_worker(
        self, server_factory, canned_result
    ):
        point = TINY.expand()[0]
        server = server_factory([point], lease_expiry_s=0.2)
        w1, w2 = make_client(server, "w1"), make_client(server, "w2")
        first = w1.lease()["lease"]
        # w2 can't have it while the lease is live.
        assert w2.lease()["lease"] is None
        time.sleep(0.3)
        server.tick()
        time.sleep(0.05)  # let the retry backoff (10ms) elapse
        regrant = w2.lease()["lease"]
        assert regrant is not None
        assert regrant["attempt"] == 2
        # w1 finished anyway (deterministic result): dedupe, not error.
        late = w1.submit_result(first["lease_id"], point, canned_result)
        assert late["recorded"] is True
        dup = w2.submit_result(regrant["lease_id"], point, canned_result)
        assert dup == {"recorded": False, "duplicate": True}

    def test_heartbeat_keeps_lease_alive(self, server_factory, canned_result):
        point = TINY.expand()[0]
        server = server_factory([point], lease_expiry_s=0.4)
        w1, w2 = make_client(server, "w1"), make_client(server, "w2")
        lease = w1.lease()["lease"]
        for _ in range(4):
            time.sleep(0.15)
            assert w1.heartbeat(lease["lease_id"])
            assert w2.lease()["lease"] is None
        ack = w1.submit_result(lease["lease_id"], point, canned_result)
        assert ack["recorded"] is True

    def test_fail_reports_and_retries(self, server_factory):
        point = TINY.expand()[0]
        server = server_factory([point], max_attempts=2)
        client = make_client(server)
        lease = client.lease()["lease"]
        assert client.fail(lease["lease_id"], "transient explosion")
        time.sleep(0.05)
        retry = client.lease()["lease"]
        assert retry["attempt"] == 2
        assert client.fail(retry["lease_id"], "permanent explosion")
        status = client.status()
        assert status["done"] is True
        assert status["counts"]["dead"] == 1
        assert "permanent explosion" in status["dead_letters"][0]

    def test_fingerprint_mismatch_rejected(self, server_factory, canned_result):
        point = TINY.expand()[0]
        server = server_factory([point])
        client = make_client(server)
        lease = client.lease()["lease"]
        with pytest.raises(ProtocolError, match="fingerprint mismatch"):
            client.transport.post(
                "/api/v1/result",
                "result",
                {
                    "lease_id": lease["lease_id"],
                    "worker": "w0",
                    "point": point.to_dict(),
                    "fingerprint": "0" * 64,  # claims the wrong hash
                    "result": canned_result.to_dict(),
                },
            )
        # Nothing was recorded.
        assert client.status()["counts"]["done"] == 0

    def test_malformed_requests_rejected(self, server_factory):
        server = server_factory(TINY.expand()[:1])
        transport = HttpTransport(server.url, timeout_s=5.0)
        with pytest.raises(ProtocolError):  # unknown endpoint -> 404
            transport.post("/api/v1/nope", "lease_request", {"worker": "w"})
        with pytest.raises(ProtocolError):  # wrong message kind
            transport.post("/api/v1/lease", "heartbeat", {"worker": "w"})
        with pytest.raises(ProtocolError):  # missing field
            transport.post("/api/v1/lease", "lease_request", {})
        with pytest.raises(ProtocolError):  # field of the wrong type
            transport.post("/api/v1/lease", "lease_request", {"worker": 7})

    def test_wire_version_mismatch_rejected(self, server_factory):
        import json
        import urllib.request

        server = server_factory(TINY.expand()[:1])
        body = wire_encode("lease_request", {"worker": "w"})
        envelope = json.loads(body)
        envelope["v"] = 999
        request = urllib.request.Request(
            server.url + "/api/v1/lease",
            data=json.dumps(envelope).encode(),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=5.0)
        assert info.value.code == 400
        _, payload = wire_decode(info.value.read())
        assert "wire format version" in payload["error"]

    def test_drain_stops_granting(self, server_factory):
        server = server_factory(TINY.expand()[:2])
        client = make_client(server)
        assert client.lease()["lease"] is not None
        server.drain()
        reply = client.lease()
        assert reply["lease"] is None
        assert reply["done"] is True  # workers should exit


class TestWireEnvelope:
    def test_round_trip(self):
        kind, payload = wire_decode(wire_encode("ping", {"a": [1, 2]}))
        assert kind == "ping" and payload == {"a": [1, 2]}

    def test_rejects_garbage(self):
        with pytest.raises(WireError):
            wire_decode(b"\xff\xfe")
        with pytest.raises(WireError):
            wire_decode("not json")
        with pytest.raises(WireError):
            wire_decode("[1,2,3]")
        with pytest.raises(WireError):
            wire_decode('{"v": 2, "kind": "x", "payload": {}}')
        with pytest.raises(WireError):
            wire_decode('{"v": 1, "kind": 5, "payload": {}}')
        with pytest.raises(WireError):
            wire_decode(wire_encode("a", {}), expect_kind="b")


class TestWorkerLoop:
    def test_workers_complete_a_sweep(self, server_factory, canned_result):
        points = TINY.expand()
        recorded = []
        server = server_factory(
            list(points), on_result=lambda p, r: recorded.append(p)
        )

        def run_worker(name):
            worker = Worker(
                make_client(server, name),
                executor=lambda point: canned_result,
                heartbeat_interval_s=0.2,
            )
            return worker.run()

        summaries = []
        threads = [
            threading.Thread(target=lambda n=n: summaries.append(run_worker(n)))
            for n in ("w1", "w2")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert sorted(recorded) == sorted(points)
        assert sum(s.completed for s in summaries) == len(points)
        assert sum(s.failures for s in summaries) == 0
        assert server.is_settled

    def test_worker_reports_clean_failures_to_dead_letter(self, server_factory):
        point = TINY.expand()[0]
        server = server_factory([point], max_attempts=2)

        def explode(p):
            raise RuntimeError("deterministic bug in this point")

        worker = Worker(
            make_client(server), executor=explode, heartbeat_interval_s=0.2
        )
        summary = worker.run()
        assert summary.failures == 2
        status = make_client(server).status()
        assert status["counts"]["dead"] == 1
        assert "deterministic bug" in status["dead_letters"][0]

    def test_worker_drain_finishes_current_point(self, server_factory, canned_result):
        points = TINY.expand()
        server = server_factory(list(points))
        worker_box = {}

        def slow_executor(point):
            # Drain arrives mid-execution; the worker must finish and
            # submit this point, then stop leasing.
            worker_box["worker"].request_drain()
            time.sleep(0.05)
            return canned_result

        worker = Worker(
            make_client(server), executor=slow_executor,
            heartbeat_interval_s=0.2,
        )
        worker_box["worker"] = worker
        summary = worker.run()
        assert summary.drained
        assert summary.completed == 1
        status = make_client(server).status()
        assert status["counts"]["done"] == 1
        assert status["counts"]["pending"] == len(points) - 1

    def test_worker_survives_server_restart(self, canned_result):
        """Reconnect/backoff: the server dies mid-sweep and comes back
        on the same port; the worker rides it out."""
        points = list(TINY.expand()[:2])
        queue1 = LeaseQueue(points, lease_expiry_s=5.0)
        server1 = SweepServer(queue1).start()
        host, port = server1._httpd.server_address[:2]
        client = make_client(server1, max_retries=30, backoff_base_s=0.02)
        worker = Worker(
            client, executor=lambda p: canned_result, heartbeat_interval_s=0.5
        )
        result_thread = threading.Thread(target=lambda: worker.run())

        # Let the worker complete one point, then bounce the server.
        lease = client.lease()["lease"]
        client.submit_result(lease["lease_id"], points[0], canned_result)
        server1.stop()

        result_thread.start()
        time.sleep(0.2)  # worker is now failing requests and backing off
        queue2 = LeaseQueue([points[1]], lease_expiry_s=5.0)
        server2 = SweepServer(queue2, port=port).start()
        try:
            result_thread.join(timeout=30.0)
            assert not result_thread.is_alive()
            assert queue2.is_settled
        finally:
            server2.stop()

    def test_transport_gives_up_when_server_gone(self):
        client = SweepClient(
            HttpTransport("http://127.0.0.1:1", timeout_s=0.2),
            "w0",
            max_retries=2,
            backoff_base_s=0.01,
        )
        with pytest.raises(TransportError, match="giving up"):
            client.lease()


class TestWorkerCli:
    def test_worker_subcommand_runs_sweep_to_completion(
        self, server_factory, canned_result, monkeypatch
    ):
        """`smartmem worker --url ...` drains a queue and exits 0."""
        from repro import cli
        from repro.experiments import backends

        monkeypatch.setattr(
            backends, "execute_point", lambda point: canned_result
        )
        points = TINY.expand()[:2]
        server = server_factory(list(points))
        rc = cli.main(
            [
                "worker",
                "--url",
                server.url,
                "--id",
                "cli-worker",
                "--heartbeat-interval",
                "0.2",
            ]
        )
        assert rc == 0
        assert server.is_settled

    def test_worker_exits_nonzero_when_server_unreachable(self):
        from repro import cli

        rc = cli.main(
            ["worker", "--url", "http://127.0.0.1:1", "--timeout", "0.2"]
        )
        assert rc == 3


def test_experiment_point_round_trips_through_lease_wire(canned_result):
    """The grant payload a worker receives rebuilds the exact point."""
    point = ExperimentPoint("many-vms:n=4", "smart-alloc:P=2", seed=7, scale=0.5)
    queue = LeaseQueue([point])
    grant = queue.acquire("w", now=0.0)
    _, decoded = wire_decode(wire_encode("lease_granted", grant.to_dict()))
    assert ExperimentPoint.from_dict(decoded["point"]) == point
