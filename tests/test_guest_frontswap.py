"""Tests for addressing, frontswap, cleancache and the swap area."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SwapError, TmemKeyError
from repro.guest.addressing import SwapEntryAddresser
from repro.guest.cleancache import CleancacheClient
from repro.guest.frontswap import FrontswapClient
from repro.guest.swap import SwapArea
from repro.hypervisor.xen import Hypervisor


class TestSwapEntryAddresser:
    def test_key_roundtrip(self):
        addresser = SwapEntryAddresser(pool_id=0, pages_per_object=1024)
        key = addresser.key_for(5000)
        assert key.object_id == 4 and key.index == 904
        assert addresser.page_for(key) == 5000

    def test_different_pages_different_keys(self):
        addresser = SwapEntryAddresser(pool_id=0)
        assert addresser.key_for(1) != addresser.key_for(2)

    def test_negative_page_rejected(self):
        with pytest.raises(TmemKeyError):
            SwapEntryAddresser(pool_id=0).key_for(-1)

    def test_foreign_pool_key_rejected(self):
        a0 = SwapEntryAddresser(pool_id=0)
        a1 = SwapEntryAddresser(pool_id=1)
        with pytest.raises(TmemKeyError):
            a0.page_for(a1.key_for(3))

    def test_object_of_groups_pages(self):
        addresser = SwapEntryAddresser(pool_id=0, pages_per_object=100)
        assert addresser.object_of(50) == 0
        assert addresser.object_of(150) == 1

    @given(page=st.integers(min_value=0, max_value=2**40))
    def test_roundtrip_property(self, page):
        addresser = SwapEntryAddresser(pool_id=0)
        assert addresser.page_for(addresser.key_for(page)) == page


class TestSwapArea:
    def test_store_and_load(self):
        swap = SwapArea(10)
        swap.store(4)
        assert 4 in swap and swap.used_pages == 1
        swap.load(4)
        assert 4 not in swap and swap.used_pages == 0
        assert swap.stats.swap_outs == 1 and swap.stats.swap_ins == 1

    def test_store_same_page_twice_is_a_rewrite(self):
        swap = SwapArea(10)
        swap.store(4)
        swap.store(4)
        assert swap.used_pages == 1

    def test_capacity_enforced(self):
        swap = SwapArea(2)
        swap.store(1)
        swap.store(2)
        with pytest.raises(SwapError):
            swap.store(3)

    def test_load_missing_page_rejected(self):
        with pytest.raises(SwapError):
            SwapArea(4).load(9)

    def test_discard_is_idempotent(self):
        swap = SwapArea(4)
        swap.store(1)
        assert swap.discard(1) is True
        assert swap.discard(1) is False

    def test_peak_usage_tracked(self):
        swap = SwapArea(10)
        for p in range(5):
            swap.store(p)
        for p in range(5):
            swap.load(p)
        assert swap.stats.peak_used_pages == 5

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(SwapError):
            SwapArea(0)


def build_clients(engine, config, tmem_pages=16, cleancache=False):
    hv = Hypervisor(engine, config, host_memory_pages=2048, tmem_pool_pages=tmem_pages)
    record = hv.create_domain("vm", ram_pages=128)
    hv.register_tmem_client(record.vm_id, frontswap=True, cleancache=cleancache)
    fs = FrontswapClient(record.vm_id, record.frontswap_pool_id, hv.hypercalls)
    cc = None
    if cleancache:
        cc = CleancacheClient(record.vm_id, record.cleancache_pool_id, hv.hypercalls)
    return hv, record, fs, cc


class TestFrontswapClient:
    def test_store_then_load_roundtrip(self, engine, config):
        hv, record, fs, _ = build_clients(engine, config)
        stored, latency = fs.store(42, now=0.0)
        assert stored and latency > 0
        assert fs.holds(42) and fs.pages_in_tmem == 1
        hit, _ = fs.load(42)
        assert hit
        assert not fs.holds(42)
        assert fs.stats.succ_stores == 1 and fs.stats.loads == 1

    def test_store_fails_when_pool_full(self, engine, config):
        hv, record, fs, _ = build_clients(engine, config, tmem_pages=2)
        assert fs.store(1, now=0.0)[0]
        assert fs.store(2, now=0.0)[0]
        stored, _ = fs.store(3, now=0.0)
        assert not stored
        assert fs.stats.failed_stores == 1
        assert not fs.holds(3)

    def test_load_of_unknown_page_is_a_miss(self, engine, config):
        hv, record, fs, _ = build_clients(engine, config)
        hit, _ = fs.load(7)
        assert not hit
        assert fs.stats.failed_loads == 1

    def test_invalidate_releases_capacity(self, engine, config):
        hv, record, fs, _ = build_clients(engine, config, tmem_pages=1)
        fs.store(1, now=0.0)
        ok, _ = fs.invalidate(1)
        assert ok
        assert fs.store(2, now=0.0)[0]

    def test_invalidate_unknown_page_is_noop(self, engine, config):
        hv, record, fs, _ = build_clients(engine, config)
        ok, latency = fs.invalidate(9)
        assert not ok and latency == 0.0

    def test_invalidate_area_flushes_everything(self, engine, config):
        hv, record, fs, _ = build_clients(engine, config, tmem_pages=8)
        for p in range(5):
            fs.store(p, now=0.0)
        flushed, latency = fs.invalidate_area()
        assert flushed == 5 and latency > 0
        assert fs.pages_in_tmem == 0
        assert hv.host_memory.tmem_used_pages == 0

    def test_version_consistency_detects_store_order(self, engine, config):
        """A get must return the data of the most recent put."""
        hv, record, fs, _ = build_clients(engine, config)
        fs.store(3, now=0.0)
        fs.load(3)
        fs.store(3, now=1.0)
        hit, _ = fs.load(3)
        assert hit  # no GuestError: version matched the latest store


class TestCleancacheClient:
    def test_put_and_get_hit(self, engine, config):
        hv, record, fs, cc = build_clients(engine, config, cleancache=True)
        ok, _ = cc.put_page(10, now=0.0)
        assert ok
        hit, _ = cc.get_page(10)
        assert hit
        # Cleancache gets are not exclusive: a second lookup still hits.
        hit2, _ = cc.get_page(10)
        assert hit2
        assert cc.stats.hit_ratio == 1.0

    def test_miss_is_not_an_error(self, engine, config):
        hv, record, fs, cc = build_clients(engine, config, cleancache=True)
        hit, _ = cc.get_page(99)
        assert not hit
        assert cc.stats.misses == 1

    def test_invalidate_page(self, engine, config):
        hv, record, fs, cc = build_clients(engine, config, cleancache=True)
        cc.put_page(5, now=0.0)
        cc.invalidate_page(5)
        hit, _ = cc.get_page(5)
        assert not hit

    def test_invalidate_inode_flushes_group(self, engine, config):
        hv, record, fs, cc = build_clients(engine, config, cleancache=True, tmem_pages=32)
        for p in range(4):
            cc.put_page(p, now=0.0)
        flushed, _ = cc.invalidate_inode(0)
        assert flushed == 4

    def test_frontswap_and_cleancache_share_the_pool(self, engine, config):
        hv, record, fs, cc = build_clients(engine, config, cleancache=True, tmem_pages=2)
        assert fs.store(0, now=0.0)[0]
        assert cc.put_page(0, now=0.0)[0]
        # Pool is now full for both clients.
        assert not fs.store(1, now=0.0)[0]
        assert not cc.put_page(1, now=0.0)[0]


class TestFrontswapBatch:
    def test_staged_burst_matches_scalar_sequence(self, engine, config):
        hv_a, _, scalar_fs, _ = build_clients(engine, config)
        hv_b, _, batch_fs, _ = build_clients(engine, config)
        for page in (1, 2, 3):
            scalar_fs.store(page, now=0.0)
        scalar_fs.load(2)
        batch = batch_fs.begin_batch()
        for page in (1, 2, 3):
            batch.stage_store(page)
        batch.stage_load(2)
        succeeded = batch.execute(now=0.0)
        assert succeeded == [True, True, True, True]
        assert scalar_fs.stats == batch_fs.stats
        assert scalar_fs.held_pages == batch_fs.held_pages

    def test_flush_then_restore_same_page_keeps_guest_in_sync(
        self, engine, config
    ):
        """A batch mixing a flush and a put of the same page must apply
        effects in staging order: the page ends up tmem-resident on both
        the guest and hypervisor sides (regression test for the bulk
        apply path reordering effects kind-by-kind)."""
        hv, record, fs, _ = build_clients(engine, config)
        assert fs.store(7, now=0.0)[0]
        batch = fs.begin_batch()
        batch.stage_flush(7)
        batch.stage_store(7)
        batch.execute(now=1.0)
        assert fs.holds(7)
        assert hv.store.pages_held_by(record.vm_id) == 1
        # And the page can round-trip back out of tmem afterwards.
        hit, _ = fs.load(7)
        assert hit and not fs.holds(7)

    def test_empty_batch_is_a_no_op(self, engine, config):
        _, _, fs, _ = build_clients(engine, config)
        assert fs.begin_batch().execute(now=0.0) == []
