"""Tests for the trace recorder and the RNG stream factory."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import AnalysisError
from repro.sim.rng import RngFactory
from repro.sim.trace import TraceRecorder, TraceSeries


class TestTraceSeries:
    def test_append_and_arrays(self):
        series = TraceSeries("s")
        series.append(0.0, 1.0)
        series.append(1.0, 2.0)
        assert series.times.tolist() == [0.0, 1.0]
        assert series.values.tolist() == [1.0, 2.0]
        assert len(series) == 2

    def test_non_monotonic_time_rejected(self):
        series = TraceSeries("s")
        series.append(5.0, 1.0)
        with pytest.raises(AnalysisError):
            series.append(4.0, 2.0)

    def test_equal_timestamps_allowed(self):
        series = TraceSeries("s")
        series.append(1.0, 1.0)
        series.append(1.0, 2.0)
        assert len(series) == 2

    def test_value_at_step_interpolation(self):
        series = TraceSeries("s")
        series.append(0.0, 10.0)
        series.append(2.0, 20.0)
        assert series.value_at(1.5) == 10.0
        assert series.value_at(2.0) == 20.0
        assert series.value_at(100.0) == 20.0

    def test_value_at_before_first_sample_raises(self):
        series = TraceSeries("s")
        series.append(1.0, 10.0)
        with pytest.raises(AnalysisError):
            series.value_at(0.5)

    def test_empty_series_stats_raise(self):
        with pytest.raises(AnalysisError):
            TraceSeries("s").mean()
        with pytest.raises(AnalysisError):
            TraceSeries("s").max()

    def test_mean_and_max(self):
        series = TraceSeries("s")
        for t, v in [(0, 1), (1, 3), (2, 2)]:
            series.append(t, v)
        assert series.mean() == pytest.approx(2.0)
        assert series.max() == pytest.approx(3.0)


class TestTraceRecorder:
    def test_record_creates_series_on_demand(self):
        rec = TraceRecorder()
        rec.record("a", 0.0, 1.0)
        assert "a" in rec
        assert rec.get("a").values.tolist() == [1.0]

    def test_get_unknown_series_raises(self):
        with pytest.raises(AnalysisError):
            TraceRecorder().get("missing")

    def test_names_sorted(self):
        rec = TraceRecorder()
        rec.record("b", 0, 1)
        rec.record("a", 0, 1)
        assert list(rec.names()) == ["a", "b"]

    def test_merge_with_prefix(self):
        a, b = TraceRecorder(), TraceRecorder()
        b.record("x", 0, 5)
        a.merge(b, prefix="run1/")
        assert "run1/x" in a
        assert a.get("run1/x").values.tolist() == [5.0]


class TestRngFactory:
    def test_same_name_same_stream(self):
        f = RngFactory(7)
        a = f.stream("w").random(5)
        b = f.stream("w").random(5)
        assert np.allclose(a, b)

    def test_different_names_different_streams(self):
        f = RngFactory(7)
        a = f.stream("w1").random(5)
        b = f.stream("w2").random(5)
        assert not np.allclose(a, b)

    def test_different_seeds_different_streams(self):
        a = RngFactory(1).stream("w").random(5)
        b = RngFactory(2).stream("w").random(5)
        assert not np.allclose(a, b)

    def test_child_factory_is_deterministic(self):
        a = RngFactory(3).child("x").stream("w").random(3)
        b = RngFactory(3).child("x").stream("w").random(3)
        assert np.allclose(a, b)

    @given(seed=st.integers(min_value=0, max_value=2**31), name=st.text(max_size=20))
    def test_stream_always_constructible(self, seed, name):
        gen = RngFactory(seed).stream(name)
        assert 0.0 <= float(gen.random()) < 1.0
