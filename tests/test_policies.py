"""Tests for the tmem management policies (Algorithms 2-4) and targets."""

import pytest
from hypothesis import given, strategies as st

from repro.core.policies import (
    GreedyPolicy,
    ReconfStaticPolicy,
    SmartAllocPolicy,
    StaticAllocPolicy,
)
from repro.core.policy import (
    available_policies,
    create_policy,
    parse_policy_spec,
)
from repro.core.stats import MemStatsView, TargetVector, VmMemStats
from repro.core.targets import (
    cap_targets,
    equal_share,
    normalize_targets,
    proportional_scale,
)
from repro.errors import PolicyError, UnknownPolicyError


def make_view(vm_stats, total_tmem=1000, free_tmem=None, time=1.0, prev=None):
    """Build a MemStatsView from (vm_id, used, target, puts_total, puts_succ)."""
    vms = tuple(
        VmMemStats(
            vm_id=v[0],
            tmem_used=v[1],
            mm_target=v[2],
            puts_total=v[3],
            puts_succ=v[4],
            cumul_puts_failed=v[5] if len(v) > 5 else (v[3] - v[4]),
        )
        for v in vm_stats
    )
    used = sum(v.tmem_used for v in vms)
    return MemStatsView(
        time=time,
        total_tmem=total_tmem,
        free_tmem=free_tmem if free_tmem is not None else total_tmem - used,
        vm_count=len(vms),
        vms=vms,
        prev=prev,
    )


# ---------------------------------------------------------------------------
# Target helpers (Equations 1-2)
# ---------------------------------------------------------------------------
class TestTargetVector:
    def test_set_get(self):
        vec = TargetVector({1: 10})
        vec.set(2, 20)
        assert vec.get(1) == 10 and vec.get(2) == 20
        assert vec.total() == 30

    def test_negative_target_rejected(self):
        with pytest.raises(PolicyError):
            TargetVector({1: -5})

    def test_missing_vm_rejected(self):
        with pytest.raises(PolicyError):
            TargetVector().get(3)

    def test_equality_and_copy(self):
        a = TargetVector({1: 5, 2: 7})
        b = a.copy()
        assert a == b
        b.set(1, 6)
        assert a != b


class TestEqualShare:
    def test_divides_evenly(self):
        vec = equal_share([1, 2, 3, 4], 100)
        assert vec.total() == 100
        assert all(t == 25 for _, t in vec.items())

    def test_remainder_distributed(self):
        vec = equal_share([1, 2, 3], 100)
        assert vec.total() == 100
        assert sorted(t for _, t in vec.items()) == [33, 33, 34]

    def test_empty_vm_list(self):
        assert len(equal_share([], 100)) == 0

    def test_negative_total_rejected(self):
        with pytest.raises(PolicyError):
            equal_share([1], -1)

    @given(
        vm_ids=st.lists(st.integers(1, 50), min_size=1, max_size=10, unique=True),
        total=st.integers(0, 10_000),
    )
    def test_shares_sum_to_total_and_differ_by_at_most_one(self, vm_ids, total):
        vec = equal_share(vm_ids, total)
        values = [t for _, t in vec.items()]
        assert sum(values) == total
        assert max(values) - min(values) <= 1


class TestProportionalScale:
    def test_preserves_ratios(self):
        vec = proportional_scale(TargetVector({1: 100, 2: 300}), 200)
        assert vec.get(1) == 50 and vec.get(2) == 150

    def test_sum_is_exact_even_with_rounding(self):
        vec = proportional_scale(TargetVector({1: 1, 2: 1, 3: 1}), 100)
        assert vec.total() == 100

    def test_all_zero_falls_back_to_equal_split(self):
        vec = proportional_scale(TargetVector({1: 0, 2: 0}), 10)
        assert vec.total() == 10

    @given(
        raw=st.dictionaries(st.integers(1, 8), st.integers(0, 5000),
                            min_size=1, max_size=8),
        total=st.integers(0, 5000),
    )
    def test_scaled_sum_always_equals_total(self, raw, total):
        vec = proportional_scale(TargetVector(raw), total)
        assert vec.total() == total


class TestCapAndNormalize:
    def test_cap_leaves_undercommitted_targets_alone(self):
        raw = TargetVector({1: 10, 2: 20})
        assert cap_targets(raw, 100) == raw

    def test_cap_scales_down_overcommitted_targets(self):
        capped = cap_targets(TargetVector({1: 150, 2: 150}), 100)
        assert capped.total() == 100
        assert capped.get(1) == capped.get(2) == 50

    def test_normalize_fills_the_pool(self):
        vec = normalize_targets(TargetVector({1: 10, 2: 30}), 100)
        assert vec.total() == 100
        assert vec.get(2) == 3 * vec.get(1)

    @given(
        raw=st.dictionaries(st.integers(1, 6), st.integers(0, 2000),
                            min_size=1, max_size=6),
        total=st.integers(0, 4000),
    )
    def test_cap_never_exceeds_pool_and_never_raises_targets(self, raw, total):
        """Property of Equation 2: scaled targets fit and never grow."""
        vec = TargetVector(raw)
        capped = cap_targets(vec, total)
        assert capped.total() <= max(total, vec.total())
        if vec.total() > total:
            assert capped.total() == total
        for vm_id, value in capped.items():
            assert value <= vec.get(vm_id) or vec.total() <= total


# ---------------------------------------------------------------------------
# Policy registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_paper_policies_registered(self):
        names = available_policies()
        for expected in ("greedy", "static-alloc", "reconf-static", "smart-alloc"):
            assert expected in names

    def test_create_policy_with_parameter(self):
        policy = create_policy("smart-alloc:P=4")
        assert isinstance(policy, SmartAllocPolicy)
        assert policy.percent == 4.0

    def test_unknown_policy_rejected(self):
        with pytest.raises(UnknownPolicyError):
            create_policy("does-not-exist")

    def test_malformed_spec_rejected(self):
        with pytest.raises(PolicyError):
            parse_policy_spec("smart-alloc:P=")
        with pytest.raises(PolicyError):
            parse_policy_spec("smart-alloc:P=abc")

    def test_parse_spec_multiple_args(self):
        name, kwargs = parse_policy_spec("smart-alloc:P=2,threshold_fraction=0.1")
        assert name == "smart-alloc"
        assert kwargs == {"P": 2.0, "threshold_fraction": 0.1}


# ---------------------------------------------------------------------------
# Greedy (the default baseline)
# ---------------------------------------------------------------------------
class TestGreedyPolicy:
    def test_never_changes_targets(self):
        policy = GreedyPolicy()
        view = make_view([(1, 50, -1, 10, 5), (2, 0, -1, 0, 0)])
        decision = policy.decide(view)
        assert not decision.changed
        assert policy.manages_targets is False


# ---------------------------------------------------------------------------
# static-alloc (Algorithm 2)
# ---------------------------------------------------------------------------
class TestStaticAllocPolicy:
    def test_equal_split_on_first_decision(self):
        policy = StaticAllocPolicy()
        view = make_view([(1, 0, -1, 0, 0), (2, 0, -1, 0, 0)], total_tmem=100)
        decision = policy.decide(view)
        assert decision.changed
        assert decision.targets.get(1) == 50 and decision.targets.get(2) == 50

    def test_silent_while_population_unchanged(self):
        policy = StaticAllocPolicy()
        view = make_view([(1, 0, -1, 0, 0), (2, 0, -1, 0, 0)], total_tmem=100)
        policy.decide(view)
        second = policy.decide(view)
        assert not second.changed

    def test_recomputes_when_vm_appears(self):
        policy = StaticAllocPolicy()
        policy.decide(make_view([(1, 0, -1, 0, 0)], total_tmem=90))
        decision = policy.decide(
            make_view([(1, 0, 90, 0, 0), (2, 0, -1, 0, 0), (3, 0, -1, 0, 0)], total_tmem=90)
        )
        assert decision.changed
        assert decision.targets.get(3) == 30

    def test_no_vms_is_a_noop(self):
        policy = StaticAllocPolicy()
        assert not policy.decide(make_view([], total_tmem=10)).changed

    def test_reset_forgets_population(self):
        policy = StaticAllocPolicy()
        view = make_view([(1, 0, -1, 0, 0)], total_tmem=10)
        policy.decide(view)
        policy.reset()
        assert policy.decide(view).changed


# ---------------------------------------------------------------------------
# reconf-static (Algorithm 3)
# ---------------------------------------------------------------------------
class TestReconfStaticPolicy:
    def test_initially_all_targets_zero(self):
        policy = ReconfStaticPolicy()
        view = make_view([(1, 0, -1, 0, 0, 0), (2, 0, -1, 0, 0, 0)], total_tmem=100)
        decision = policy.decide(view)
        assert decision.changed
        assert decision.targets.get(1) == 0 and decision.targets.get(2) == 0

    def test_active_vm_gets_full_pool_while_others_idle(self):
        policy = ReconfStaticPolicy()
        view = make_view([(1, 0, 0, 10, 4, 6), (2, 0, 0, 0, 0, 0)], total_tmem=100)
        decision = policy.decide(view)
        assert decision.targets.get(1) == 100
        assert decision.targets.get(2) == 0

    def test_share_reconfigured_when_second_vm_becomes_active(self):
        policy = ReconfStaticPolicy()
        policy.decide(make_view([(1, 0, 0, 10, 4, 6), (2, 0, 0, 0, 0, 0)], total_tmem=100))
        decision = policy.decide(
            make_view([(1, 40, 100, 5, 5, 6), (2, 0, 0, 8, 2, 6)], total_tmem=100)
        )
        assert decision.changed
        assert decision.targets.get(1) == 50 and decision.targets.get(2) == 50

    def test_active_vm_keeps_share_for_its_lifetime(self):
        policy = ReconfStaticPolicy()
        policy.decide(make_view([(1, 0, 0, 10, 4, 6), (2, 0, 0, 5, 1, 4)], total_tmem=100))
        # Both go quiet: the split must not change.
        decision = policy.decide(
            make_view([(1, 10, 50, 0, 0, 6), (2, 10, 50, 0, 0, 4)], total_tmem=100)
        )
        assert not decision.changed

    def test_departed_vm_share_is_redistributed(self):
        policy = ReconfStaticPolicy()
        policy.decide(make_view([(1, 0, 0, 10, 4, 6), (2, 0, 0, 8, 2, 6)], total_tmem=100))
        decision = policy.decide(make_view([(1, 40, 50, 1, 1, 6)], total_tmem=100))
        assert decision.changed
        assert decision.targets.get(1) == 100


# ---------------------------------------------------------------------------
# smart-alloc (Algorithm 4)
# ---------------------------------------------------------------------------
class TestSmartAllocPolicy:
    def test_rejects_bad_percent(self):
        with pytest.raises(PolicyError):
            SmartAllocPolicy(percent=0)
        with pytest.raises(PolicyError):
            SmartAllocPolicy(percent=150)

    def test_increment_on_failed_puts(self):
        policy = SmartAllocPolicy(percent=10, threshold_pages=10)
        view = make_view([(1, 0, 0, 20, 10), (2, 0, 0, 0, 0)], total_tmem=1000)
        decision = policy.decide(view)
        assert decision.changed
        # VM1 had failed puts: target grows by 10% of the pool (=100 pages).
        assert decision.targets.get(1) == 100
        assert decision.targets.get(2) == 0

    def test_decrement_when_far_below_target(self):
        policy = SmartAllocPolicy(percent=10, threshold_pages=50)
        view = make_view([(1, 10, 500, 5, 5)], total_tmem=1000)
        decision = policy.decide(view)
        # No failed puts and usage is 490 below target: shrink by 10%.
        assert decision.targets.get(1) == 450

    def test_no_change_when_within_threshold(self):
        policy = SmartAllocPolicy(percent=10, threshold_pages=100)
        view = make_view([(1, 450, 500, 5, 5)], total_tmem=1000)
        first = policy.decide(view)
        assert first.changed  # the very first vector is always transmitted
        assert first.targets.get(1) == 500
        # Usage within the threshold of the target: nothing changes, so the
        # second decision is suppressed (no hypercall traffic).
        second = policy.decide(view)
        assert not second.changed

    def test_proportional_scale_down_when_overcommitted(self):
        """Equation 2: the pool is never over-committed."""
        policy = SmartAllocPolicy(percent=50, threshold_pages=10)
        view = make_view(
            [(1, 400, 400, 10, 0), (2, 600, 600, 10, 0)], total_tmem=1000
        )
        decision = policy.decide(view)
        assert decision.targets.total() <= 1000
        # Proportions are preserved: VM2 keeps 1.5x VM1's share.
        assert decision.targets.get(2) > decision.targets.get(1)

    def test_duplicate_vector_is_not_resent(self):
        policy = SmartAllocPolicy(percent=10, threshold_pages=100)
        view = make_view([(1, 450, 500, 5, 5)], total_tmem=1000)
        first = policy.decide(make_view([(1, 0, 0, 10, 0)], total_tmem=1000))
        assert first.changed
        repeat = policy.decide(make_view([(1, 90, 100, 5, 5)], total_tmem=1000))
        assert not repeat.changed

    def test_new_vm_starts_with_zero_target(self):
        policy = SmartAllocPolicy(percent=10, threshold_pages=10)
        policy.decide(make_view([(1, 0, 0, 10, 0)], total_tmem=1000))
        decision = policy.decide(
            make_view([(1, 100, 100, 10, 0), (2, 0, -1, 0, 0)], total_tmem=1000)
        )
        assert decision.targets.get(2) == 0

    def test_convergence_towards_equal_shares_under_symmetric_demand(self):
        """With identical sustained demand the targets approach a fair split."""
        policy = SmartAllocPolicy(percent=10, threshold_pages=10)
        targets = {1: 0, 2: 0, 3: 0}
        for _ in range(50):
            view = make_view(
                [(vm, targets[vm], targets[vm], 20, 10) for vm in (1, 2, 3)],
                total_tmem=900,
            )
            decision = policy.decide(view)
            if decision.changed:
                targets = {vm: decision.targets.get(vm) for vm in (1, 2, 3)}
        values = sorted(targets.values())
        assert sum(values) <= 900
        assert values[-1] - values[0] <= 0.2 * 900

    def test_capacity_flows_to_the_needy_vm(self):
        """A VM with sustained failed puts gains share from an idle one."""
        policy = SmartAllocPolicy(percent=5, threshold_pages=10)
        targets = {1: 600, 2: 300}
        usage = {1: 100, 2: 300}
        for _ in range(30):
            view = make_view(
                [
                    (1, usage[1], targets[1], 0, 0),     # idle, far below target
                    (2, usage[2], targets[2], 20, 5),    # swapping hard
                ],
                total_tmem=900,
            )
            decision = policy.decide(view)
            if decision.changed:
                targets = {vm: decision.targets.get(vm) for vm in (1, 2)}
                usage[2] = min(targets[2], 900 - usage[1])
        assert targets[2] > 500
        assert targets[1] < 300

    @given(
        percent=st.sampled_from([0.25, 0.75, 2.0, 4.0, 6.0]),
        demands=st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 40)),
            min_size=1, max_size=40,
        ),
    )
    def test_targets_never_overcommit_for_any_demand_sequence(self, percent, demands):
        """Property: Equation 2 holds after every decision."""
        policy = SmartAllocPolicy(percent=percent, threshold_pages=10)
        total = 500
        targets = {1: 0, 2: 0}
        for puts1, puts2 in demands:
            view = make_view(
                [
                    (1, min(targets[1], total), targets[1], puts1, puts1 // 2),
                    (2, min(targets[2], total), targets[2], puts2, puts2 // 2),
                ],
                total_tmem=total,
            )
            decision = policy.decide(view)
            if decision.changed:
                assert decision.targets.total() <= total
                for _, value in decision.targets.items():
                    assert value >= 0
                targets = {vm: decision.targets.get(vm) for vm in (1, 2)}
