"""Scenario-DSL compiler: family twins, explicit mode and structured errors.

The headline guarantee of family mode is that compilation *is* a
registry factory call, so a DSL document and its spec-string twin
produce byte-identical specs — and therefore byte-identical run
fingerprints.  Explicit mode is checked structurally, and the error
paths are checked to collect *every* problem instead of stopping at the
first one.
"""

from pathlib import Path

import pytest

from repro.scenarios.dsl import DslError, compile_file, compile_text
from repro.scenarios.library import scenario_by_name
from repro.scenarios.registry import paper_scenario_names
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples" / "dsl"

#: (family-mode document, equivalent spec string) twins.  Three families
#: is the floor the fingerprint-equivalence guarantee is pinned at.
TWINS = [
    ("family: many-vms\nscale: 0.1\nparams: {n: 2}\n", "many-vms:n=2"),
    ("family: churn\nscale: 0.1\nparams: {n: 2}\n", "churn:n=2"),
    ("family: bursty\nscale: 0.1\nparams: {spikes: 1}\n", "bursty:spikes=1"),
]


class TestFamilyMode:
    @pytest.mark.parametrize("text,spec_string", TWINS)
    def test_spec_equals_spec_string_twin(self, text, spec_string):
        compiled = compile_text(text)
        assert compiled.mode == "family"
        assert compiled.spec == scenario_by_name(spec_string, scale=0.1)

    @pytest.mark.parametrize("text,spec_string", TWINS)
    def test_run_fingerprint_equals_spec_string_twin(self, text, spec_string):
        compiled = compile_text(text)
        dsl_run = run_scenario(compiled.spec, "greedy", seed=2019)
        twin_run = run_scenario(
            scenario_by_name(spec_string, scale=0.1), "greedy", seed=2019
        )
        assert dsl_run.fingerprint() == twin_run.fingerprint()

    @pytest.mark.parametrize("name", sorted(paper_scenario_names()))
    def test_every_paper_scenario_compiles(self, name):
        compiled = compile_text(f"family: {name}\nscale: 0.25\n")
        assert compiled.spec == scenario_by_name(name, scale=0.25)

    def test_policy_and_seed_defaults(self):
        compiled = compile_text(
            "family: many-vms\nparams: {n: 2}\npolicy: smart-alloc:P=2\nseed: 7\n"
        )
        assert compiled.policy == "smart-alloc:P=2"
        assert compiled.seed == 7

    def test_committed_example_matches_the_paper_scenario(self):
        compiled = compile_file(str(EXAMPLES / "scenario-1.yml"))
        assert compiled.spec == scenario_by_name("scenario-1", scale=0.25)
        assert compiled.policy == "smart-alloc"
        assert compiled.seed == 2019


class TestExplicitMode:
    def test_small_document(self):
        compiled = compile_text(
            """
scenario: tiny
description: two VMs
tmem_mb: 128
max_duration_s: 120
vms:
  - name: VM1
    ram_mb: 64
    jobs:
      - kind: usemem
        params: {start_mb: 32, max_mb: 96, increment_mb: 32}
  - name: VM2
    ram_mb: 64
    vcpus: 2
    jobs:
      - kind: usemem
        params: {start_mb: 32, max_mb: 96, increment_mb: 32}
        start_at: 5
        label: late
"""
        )
        spec = compiled.spec
        assert isinstance(spec, ScenarioSpec)
        assert compiled.mode == "explicit"
        assert spec.name == "tiny"
        assert spec.tmem_mb == 128
        assert spec.max_duration_s == 120
        assert [vm.name for vm in spec.vms] == ["VM1", "VM2"]
        assert spec.vms[1].vcpus == 2
        job = spec.vms[1].jobs[0]
        assert job.start_at == 5
        assert job.label == "late"
        assert spec.topology is None

    def test_cluster_document(self):
        compiled = compile_file(str(EXAMPLES / "cluster-faults.yml"))
        topology = compiled.spec.topology
        assert topology is not None
        assert [n.name for n in topology.nodes] == ["node1", "node2"]
        assert topology.coordinator == "equal-share"
        plan = topology.fault_plan
        assert plan is not None
        assert len(plan.node_faults) == 1
        assert plan.node_faults[0].node == "node2"
        assert len(plan.link_faults) == 1
        assert plan.link_faults[0].name == "node1->node2"

    def test_quoted_numeric_string_stays_a_string(self):
        # YAML scalars keep their quoted types: a VM named "123" is a
        # string, an unquoted ram_mb is an int.
        compiled = compile_text(
            """
scenario: quoted
tmem_mb: 64
vms:
  - name: "123"
    ram_mb: 64
    jobs: [{kind: usemem, params: {start_mb: 32, max_mb: 64}}]
"""
        )
        assert compiled.spec.vms[0].name == "123"


class TestErrors:
    def _errors(self, text):
        with pytest.raises(DslError) as excinfo:
            compile_text(text)
        return excinfo.value

    def test_unknown_family_suggests(self):
        err = self._errors("family: many-vm\n")
        assert "many-vm" in str(err)
        assert "did you mean 'many-vms'" in str(err)

    def test_family_and_scenario_are_exclusive(self):
        err = self._errors("family: many-vms\nscenario: also\ntmem_mb: 64\n")
        assert "mixes family mode" in str(err)

    def test_empty_document(self):
        with pytest.raises(DslError):
            compile_text("")

    def test_unknown_workload_param_suggests(self):
        err = self._errors(
            """
scenario: bad
tmem_mb: 64
vms:
  - name: VM1
    ram_mb: 64
    jobs:
      - kind: usemem
        params: {start_mbb: 32}
"""
        )
        assert "start_mbb" in str(err)
        assert "did you mean 'start_mb'" in str(err)

    def test_all_errors_collected(self):
        # One compile pass reports the bad kind, the bad policy and the
        # unknown top-level key — not just the first.
        err = self._errors(
            """
scenario: multi
tmem_mb: 64
policy: smrt-alloc
polarity: 3
vms:
  - name: VM1
    ram_mb: 64
    jobs: [{kind: usemen, params: {}}]
"""
        )
        text = err.render()
        assert "usemen" in text
        assert "smrt-alloc" in text
        assert "polarity" in text
        assert len(err.errors) >= 3

    def test_unknown_vm_reference_in_cluster(self):
        err = self._errors(
            """
scenario: bad-cluster
tmem_mb: 64
vms:
  - name: VM1
    ram_mb: 64
    jobs: [{kind: usemem, params: {start_mb: 32, max_mb: 64}}]
cluster:
  nodes:
    - {name: node1, vms: [VM2], tmem_mb: 64}
"""
        )
        assert "VM2" in str(err)
        assert "did you mean 'VM1'" in str(err)

    def test_bad_fault_spec_string(self):
        err = self._errors(
            """
scenario: bad-fault
tmem_mb: 64
vms:
  - name: VM1
    ram_mb: 64
    jobs: [{kind: usemem, params: {start_mb: 32, max_mb: 64}}]
  - name: VM2
    ram_mb: 64
    jobs: [{kind: usemem, params: {start_mb: 32, max_mb: 64}}]
cluster:
  nodes:
    - {name: node1, vms: [VM1], tmem_mb: 64}
    - {name: node2, vms: [VM2], tmem_mb: 64}
  faults: ["node2@30"]
"""
        )
        assert "bad fault spec 'node2@30'" in err.render()

    def test_infeasible_host_memory(self):
        err = self._errors(
            """
scenario: too-small
tmem_mb: 512
host_memory_mb: 256
vms:
  - name: VM1
    ram_mb: 512
    jobs: [{kind: usemem, params: {start_mb: 32, max_mb: 64}}]
"""
        )
        assert "host" in str(err).lower()

    def test_diagnostics_carry_positions(self):
        err = self._errors("family: nope\n")
        diag = err.errors[0]
        assert diag.line == 1
        assert diag.column is not None
