"""Tests for the tmem backend: Algorithm 1's admission control."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.devices.dram import HostMemory
from repro.errors import HypercallError
from repro.hypervisor.accounting import HypervisorAccounting
from repro.hypervisor.pages import PageKey
from repro.hypervisor.tmem_backend import TmemBackend
from repro.hypervisor.tmem_store import TmemStore
from repro.hypervisor.xen import Hypervisor


def build_backend(tmem_pages=8, vms=(1,)):
    host = HostMemory(1024)
    host.grow_tmem_pool(tmem_pages)
    store = TmemStore()
    accounting = HypervisorAccounting(host)
    backend = TmemBackend(host, store, accounting)
    pools = {}
    for vm in vms:
        accounting.register_vm(vm)
        pools[vm] = store.create_pool(vm).pool_id
    return backend, accounting, host, pools


def key(i, pool=0):
    return PageKey(pool, 0, i)


class TestPutAdmission:
    def test_put_succeeds_with_free_pages_and_no_target(self):
        backend, acc, host, pools = build_backend()
        result = backend.put(1, pools[1], key(0), version=1, now=0.0)
        assert result.succeeded
        assert acc.account(1).tmem_used == 1
        assert host.tmem_used_pages == 1

    def test_put_fails_when_pool_exhausted(self):
        backend, acc, host, pools = build_backend(tmem_pages=2)
        assert backend.put(1, pools[1], key(0), version=1, now=0.0).succeeded
        assert backend.put(1, pools[1], key(1), version=1, now=0.0).succeeded
        result = backend.put(1, pools[1], key(2), version=1, now=0.0)
        assert not result.succeeded
        assert acc.account(1).tmem_used == 2

    def test_put_fails_at_target(self):
        """Algorithm 1 line 5: tmem_used >= mm_target means E_TMEM."""
        backend, acc, host, pools = build_backend(tmem_pages=8)
        acc.set_target(1, 2)
        assert backend.put(1, pools[1], key(0), version=1, now=0.0).succeeded
        assert backend.put(1, pools[1], key(1), version=1, now=0.0).succeeded
        assert not backend.put(1, pools[1], key(2), version=1, now=0.0).succeeded
        # Free pages remain but the target blocks further puts.
        assert host.tmem_free_pages == 6

    def test_put_with_zero_target_always_fails(self):
        backend, acc, host, pools = build_backend()
        acc.set_target(1, 0)
        assert not backend.put(1, pools[1], key(0), version=1, now=0.0).succeeded

    def test_put_counters_track_totals_and_successes(self):
        backend, acc, host, pools = build_backend(tmem_pages=1)
        backend.put(1, pools[1], key(0), version=1, now=0.0)
        backend.put(1, pools[1], key(1), version=1, now=0.0)  # fails, pool full
        account = acc.account(1)
        assert account.puts_total == 2
        assert account.puts_succ == 1
        assert account.puts_failed == 1
        assert account.cumul_puts_failed == 1

    def test_duplicate_put_overwrites_in_place(self):
        """A put to an existing key must not consume a second frame."""
        backend, acc, host, pools = build_backend(tmem_pages=4)
        backend.put(1, pools[1], key(0), version=1, now=0.0)
        result = backend.put(1, pools[1], key(0), version=9, now=1.0)
        assert result.succeeded
        assert acc.account(1).tmem_used == 1
        got = backend.get(1, pools[1], key(0))
        assert got.version == 9

    def test_target_below_usage_blocks_but_keeps_pages(self):
        """Targets may drop below current usage; pages are not reclaimed."""
        backend, acc, host, pools = build_backend(tmem_pages=8)
        for i in range(4):
            backend.put(1, pools[1], key(i), version=1, now=0.0)
        acc.set_target(1, 2)
        assert acc.account(1).tmem_used == 4
        assert not backend.put(1, pools[1], key(9), version=1, now=0.0).succeeded
        # Releasing below target re-enables puts.
        backend.flush_page(1, pools[1], key(0))
        backend.flush_page(1, pools[1], key(1))
        backend.flush_page(1, pools[1], key(2))
        assert backend.put(1, pools[1], key(9), version=1, now=0.0).succeeded


class TestGetAndFlush:
    def test_get_returns_latest_version_and_is_exclusive(self):
        backend, acc, host, pools = build_backend()
        backend.put(1, pools[1], key(3), version=7, now=0.0)
        result = backend.get(1, pools[1], key(3))
        assert result.succeeded and result.version == 7
        assert acc.account(1).tmem_used == 0
        assert host.tmem_used_pages == 0
        # A second get misses: the page was removed.
        assert not backend.get(1, pools[1], key(3)).succeeded

    def test_get_miss_reports_failure(self):
        backend, acc, host, pools = build_backend()
        assert not backend.get(1, pools[1], key(0)).succeeded
        assert acc.account(1).gets_total == 1

    def test_cleancache_get_is_not_exclusive(self):
        backend, acc, host, pools = build_backend()
        store_pool = backend._store.create_pool(1, persistent=False)
        backend.put(1, store_pool.pool_id, key(0, store_pool.pool_id), version=1, now=0.0)
        first = backend.get(1, store_pool.pool_id, key(0, store_pool.pool_id))
        second = backend.get(1, store_pool.pool_id, key(0, store_pool.pool_id))
        assert first.succeeded and second.succeeded

    def test_flush_page_frees_capacity(self):
        backend, acc, host, pools = build_backend(tmem_pages=1)
        backend.put(1, pools[1], key(0), version=1, now=0.0)
        assert not backend.put(1, pools[1], key(1), version=1, now=0.0).succeeded
        assert backend.flush_page(1, pools[1], key(0)).succeeded
        assert backend.put(1, pools[1], key(1), version=1, now=0.0).succeeded

    def test_flush_missing_page_fails_gracefully(self):
        backend, acc, host, pools = build_backend()
        assert not backend.flush_page(1, pools[1], key(5)).succeeded

    def test_flush_object_removes_group(self):
        backend, acc, host, pools = build_backend(tmem_pages=16)
        for i in range(5):
            backend.put(1, pools[1], PageKey(pools[1], 7, i), version=1, now=0.0)
        backend.put(1, pools[1], PageKey(pools[1], 8, 0), version=1, now=0.0)
        result = backend.flush_object(1, pools[1], 7)
        assert result.succeeded and result.pages_flushed == 5
        assert acc.account(1).tmem_used == 1

    def test_destroy_vm_releases_everything(self):
        backend, acc, host, pools = build_backend(tmem_pages=8, vms=(1, 2))
        for i in range(3):
            backend.put(1, pools[1], key(i), version=1, now=0.0)
        backend.put(2, pools[2], key(0, pools[2]), version=1, now=0.0)
        freed = backend.destroy_vm(1)
        assert freed == 3
        assert host.tmem_used_pages == 1


class TestMultiVmIsolation:
    def test_vms_have_separate_key_spaces(self):
        backend, acc, host, pools = build_backend(vms=(1, 2))
        backend.put(1, pools[1], key(0, pools[1]), version=1, now=0.0)
        backend.put(2, pools[2], key(0, pools[2]), version=2, now=0.0)
        assert backend.get(1, pools[1], key(0, pools[1])).version == 1
        assert backend.get(2, pools[2], key(0, pools[2])).version == 2

    def test_one_vm_can_exhaust_the_pool_without_targets(self):
        """The greedy failure mode the paper demonstrates."""
        backend, acc, host, pools = build_backend(tmem_pages=4, vms=(1, 2))
        for i in range(4):
            assert backend.put(1, pools[1], key(i, pools[1]), version=1, now=0.0).succeeded
        assert not backend.put(2, pools[2], key(0, pools[2]), version=1, now=0.0).succeeded

    def test_targets_protect_capacity_for_other_vms(self):
        """With targets, a greedy VM cannot crowd out its neighbour."""
        backend, acc, host, pools = build_backend(tmem_pages=4, vms=(1, 2))
        acc.set_target(1, 2)
        acc.set_target(2, 2)
        for i in range(4):
            backend.put(1, pools[1], key(i, pools[1]), version=1, now=0.0)
        assert acc.account(1).tmem_used == 2
        assert backend.put(2, pools[2], key(0, pools[2]), version=1, now=0.0).succeeded

    def test_unregistered_vm_rejected(self):
        backend, acc, host, pools = build_backend()
        with pytest.raises(HypercallError):
            backend.put(99, 0, key(0), version=1, now=0.0)


class TestAccountingInvariants:
    @settings(deadline=None, max_examples=50)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "get", "flush"]),
                st.integers(1, 2),
                st.integers(0, 15),
            ),
            max_size=200,
        ),
        target1=st.one_of(st.none(), st.integers(0, 10)),
        target2=st.one_of(st.none(), st.integers(0, 10)),
    )
    def test_random_operation_sequences_preserve_invariants(
        self, ops, target1, target2
    ):
        """Property: counters and frame pool stay consistent for any op mix."""
        backend, acc, host, pools = build_backend(tmem_pages=8, vms=(1, 2))
        if target1 is not None:
            acc.set_target(1, target1)
        if target2 is not None:
            acc.set_target(2, target2)
        version = 0
        for op, vm, idx in ops:
            version += 1
            k = key(idx, pools[vm])
            if op == "put":
                backend.put(vm, pools[vm], k, version=version, now=float(version))
            elif op == "get":
                backend.get(vm, pools[vm], k)
            else:
                backend.flush_page(vm, pools[vm], k)
            acc.check_invariants()
            host.check_invariants()
            assert 0 <= host.tmem_used_pages <= 8
            for account in acc.accounts():
                assert account.tmem_used >= 0
                if account.has_target and account.mm_target == 0:
                    # A zero target admits nothing beyond already-held pages.
                    assert account.tmem_used <= 8


class TestHypervisorFacade:
    def test_create_and_register_domain(self, engine, config):
        hv = Hypervisor(engine, config, host_memory_pages=2048, tmem_pool_pages=128)
        record = hv.create_domain("vm", ram_pages=256)
        hv.register_tmem_client(record.vm_id)
        assert record.frontswap_pool_id is not None
        assert hv.accounting.vm_count == 1
        hv.check_invariants()

    def test_destroy_domain_releases_ram_and_tmem(self, engine, config):
        hv = Hypervisor(engine, config, host_memory_pages=2048, tmem_pool_pages=128)
        record = hv.create_domain("vm", ram_pages=256)
        hv.register_tmem_client(record.vm_id)
        hv.backend.put(
            record.vm_id, record.frontswap_pool_id, key(0), version=1, now=0.0
        )
        before = hv.host_memory.vm_reserved_pages
        hv.destroy_domain(record.vm_id)
        assert hv.host_memory.vm_reserved_pages == before - 256
        assert hv.host_memory.tmem_used_pages == 0
        hv.check_invariants()

    def test_cannot_create_domains_beyond_host_memory(self, engine, config):
        hv = Hypervisor(engine, config, host_memory_pages=512, tmem_pool_pages=256)
        hv.create_domain("vm1", ram_pages=200)
        with pytest.raises(Exception):
            hv.create_domain("vm2", ram_pages=200)


class TestExecuteBatch:
    """The batched data path must mirror the scalar ops op for op."""

    @staticmethod
    def put_op(i, version=1):
        from repro.hypervisor.tmem_backend import BATCH_PUT
        return (BATCH_PUT, 0, i, version)

    @staticmethod
    def get_op(i):
        from repro.hypervisor.tmem_backend import BATCH_GET
        return (BATCH_GET, 0, i, 0)

    @staticmethod
    def flush_op(i):
        from repro.hypervisor.tmem_backend import BATCH_FLUSH
        return (BATCH_FLUSH, 0, i, 0)

    def test_all_success_batch_reports_bulk_flag(self):
        backend, acc, host, pools = build_backend(tmem_pages=8)
        ops = [self.put_op(i, version=i + 1) for i in range(4)]
        result = backend.execute_batch(1, pools[1], ops, now=0.0)
        assert result.all_succeeded
        assert result.statuses == []
        assert result.puts_total == result.puts_succ == 4
        assert acc.account(1).tmem_used == 4
        assert host.tmem_used_pages == 4

    def test_admission_failure_materializes_statuses(self):
        backend, acc, host, pools = build_backend(tmem_pages=2)
        ops = [self.put_op(i, version=i + 1) for i in range(4)]
        result = backend.execute_batch(1, pools[1], ops, now=0.0)
        assert not result.all_succeeded
        assert result.statuses == [1, 1, 0, 0]
        assert result.puts_succ == 2 and result.puts_failed == 2
        assert acc.account(1).tmem_used == 2

    def test_get_mid_batch_frees_a_frame_for_a_later_put(self):
        """An exclusive get inside the batch releases capacity that a put
        later in the same batch may consume — order matters."""
        backend, acc, host, pools = build_backend(tmem_pages=1)
        assert backend.put(1, pools[1], key(0), version=7, now=0.0).succeeded
        ops = [self.get_op(0), self.put_op(1, version=8)]
        result = backend.execute_batch(1, pools[1], ops, now=1.0)
        assert result.all_succeeded
        assert result.get_versions == [7]
        assert acc.account(1).tmem_used == 1
        # Reversed order: the put must fail because the frame is taken.
        ops = [self.put_op(2, version=9), self.get_op(1)]
        result = backend.execute_batch(1, pools[1], ops, now=2.0)
        assert result.statuses == [0, 1]
        assert result.get_versions == [8]

    def test_target_respected_within_batch(self):
        backend, acc, host, pools = build_backend(tmem_pages=8)
        acc.set_target(1, 2)
        ops = [self.put_op(i, version=i + 1) for i in range(3)]
        result = backend.execute_batch(1, pools[1], ops, now=0.0)
        assert result.statuses == [1, 1, 0]

    def test_replace_put_does_not_take_a_frame(self):
        backend, acc, host, pools = build_backend(tmem_pages=2)
        ops = [self.put_op(0, version=1), self.put_op(0, version=2)]
        result = backend.execute_batch(1, pools[1], ops, now=0.0)
        assert result.all_succeeded
        assert acc.account(1).tmem_used == 1
        got = backend.execute_batch(1, pools[1], [self.get_op(0)], now=1.0)
        assert got.get_versions == [2]

    def test_replace_put_succeeds_even_when_pool_is_full(self):
        backend, acc, host, pools = build_backend(tmem_pages=1)
        assert backend.put(1, pools[1], key(0), version=1, now=0.0).succeeded
        result = backend.execute_batch(
            1, pools[1], [self.put_op(0, version=5)], now=1.0
        )
        assert result.all_succeeded

    def test_flush_in_batch_releases_frames(self):
        backend, acc, host, pools = build_backend(tmem_pages=4)
        backend.execute_batch(
            1, pools[1], [self.put_op(i, version=1) for i in range(3)], now=0.0
        )
        result = backend.execute_batch(
            1, pools[1], [self.flush_op(0), self.flush_op(1)], now=1.0
        )
        assert result.all_succeeded
        assert result.flushes_total == 2
        assert acc.account(1).tmem_used == 1
        assert host.tmem_used_pages == 1

    def test_counters_match_scalar_equivalent(self):
        scalar_b, scalar_acc, _, scalar_pools = build_backend(tmem_pages=2)
        batch_b, batch_acc, _, batch_pools = build_backend(tmem_pages=2)
        for i in range(4):
            scalar_b.put(1, scalar_pools[1], key(i), version=i + 1, now=0.0)
        scalar_b.get(1, scalar_pools[1], key(0))
        scalar_b.flush_page(1, scalar_pools[1], key(1))
        ops = [self.put_op(i, version=i + 1) for i in range(4)]
        ops += [self.get_op(0), self.flush_op(1)]
        batch_b.execute_batch(1, batch_pools[1], ops, now=0.0)
        assert scalar_acc.account(1) == batch_acc.account(1)
