"""Tests for memory unit conversions."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.units import (
    GIB,
    KIB,
    XEN_PAGE_BYTES,
    DEFAULT_UNITS,
    SCENARIO_UNITS,
    MemoryUnits,
)


class TestConstruction:
    def test_default_page_size_is_xen_page(self):
        assert MemoryUnits().page_bytes == XEN_PAGE_BYTES == 4096

    def test_rejects_zero_page_size(self):
        with pytest.raises(ConfigurationError):
            MemoryUnits(page_bytes=0)

    def test_rejects_negative_page_size(self):
        with pytest.raises(ConfigurationError):
            MemoryUnits(page_bytes=-4096)

    def test_rejects_non_multiple_of_xen_page(self):
        with pytest.raises(ConfigurationError):
            MemoryUnits(page_bytes=6000)

    def test_scenario_units_are_256_kib(self):
        assert SCENARIO_UNITS.page_bytes == 256 * KIB
        assert SCENARIO_UNITS.xen_pages_per_page == 64


class TestConversions:
    def test_pages_from_bytes_exact(self):
        assert DEFAULT_UNITS.pages_from_bytes(8192) == 2

    def test_pages_from_bytes_rounds_up(self):
        assert DEFAULT_UNITS.pages_from_bytes(4097) == 2

    def test_pages_from_zero_bytes(self):
        assert DEFAULT_UNITS.pages_from_bytes(0) == 0

    def test_pages_from_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_UNITS.pages_from_bytes(-1)

    def test_pages_from_mib(self):
        assert DEFAULT_UNITS.pages_from_mib(1) == 256

    def test_pages_from_gib(self):
        assert DEFAULT_UNITS.pages_from_gib(1) == 262144

    def test_gib_of_1024_mib_equal(self):
        assert DEFAULT_UNITS.pages_from_gib(1) == DEFAULT_UNITS.pages_from_mib(1024)

    def test_bytes_from_pages(self):
        assert DEFAULT_UNITS.bytes_from_pages(3) == 3 * 4096

    def test_bytes_from_negative_pages_rejected(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_UNITS.bytes_from_pages(-2)

    def test_mib_from_pages(self):
        assert DEFAULT_UNITS.mib_from_pages(256) == pytest.approx(1.0)

    def test_gib_from_pages(self):
        assert DEFAULT_UNITS.gib_from_pages(262144) == pytest.approx(1.0)

    def test_coarse_pages_hold_more(self):
        # 1 GiB in 256 KiB pages is 4096 pages.
        assert SCENARIO_UNITS.pages_from_gib(1) == 4096


class TestLatencyScaling:
    def test_default_units_do_not_scale(self):
        assert DEFAULT_UNITS.scale_latency(1e-6) == pytest.approx(1e-6)

    def test_coarse_units_scale_linearly(self):
        assert SCENARIO_UNITS.scale_latency(1e-6) == pytest.approx(64e-6)


@given(nbytes=st.integers(min_value=0, max_value=16 * GIB))
def test_roundtrip_bytes_pages_bound(nbytes):
    """pages_from_bytes always covers the requested bytes, within one page."""
    pages = DEFAULT_UNITS.pages_from_bytes(nbytes)
    covered = DEFAULT_UNITS.bytes_from_pages(pages)
    assert covered >= nbytes
    assert covered - nbytes < DEFAULT_UNITS.page_bytes


@given(
    mib=st.integers(min_value=1, max_value=64 * 1024),
    factor=st.sampled_from([1, 2, 4, 16, 64, 256]),
)
def test_page_count_scales_inversely_with_page_size(mib, factor):
    """Using pages that are k times larger yields ~k times fewer pages."""
    small = MemoryUnits(page_bytes=XEN_PAGE_BYTES)
    large = MemoryUnits(page_bytes=XEN_PAGE_BYTES * factor)
    small_pages = small.pages_from_mib(mib)
    large_pages = large.pages_from_mib(mib)
    assert large_pages == -(-small_pages // factor)
