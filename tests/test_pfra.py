"""Tests for the page-frame reclaim algorithms (LRU and CLOCK)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError, GuestError
from repro.guest.pfra import ClockReclaim, LruReclaim, make_reclaimer


@pytest.fixture(params=["lru", "clock"])
def reclaimer(request):
    return make_reclaimer(request.param)


class TestCommonBehaviour:
    def test_factory_rejects_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            make_reclaimer("arc")

    def test_insert_and_contains(self, reclaimer):
        reclaimer.insert(1)
        reclaimer.insert(2)
        assert 1 in reclaimer and 2 in reclaimer
        assert len(reclaimer) == 2

    def test_double_insert_rejected(self, reclaimer):
        reclaimer.insert(1)
        with pytest.raises(GuestError):
            reclaimer.insert(1)

    def test_touch_non_resident_rejected(self, reclaimer):
        with pytest.raises(GuestError):
            reclaimer.touch(5)

    def test_remove_non_resident_rejected(self, reclaimer):
        with pytest.raises(GuestError):
            reclaimer.remove(5)

    def test_victim_from_empty_rejected(self, reclaimer):
        with pytest.raises(GuestError):
            reclaimer.select_victim()

    def test_victim_is_removed(self, reclaimer):
        for p in range(5):
            reclaimer.insert(p)
        victim = reclaimer.select_victim()
        assert victim not in reclaimer
        assert len(reclaimer) == 4

    def test_remove_then_reinsert(self, reclaimer):
        reclaimer.insert(3)
        reclaimer.remove(3)
        reclaimer.insert(3)
        assert 3 in reclaimer

    def test_pages_iterates_resident_set(self, reclaimer):
        for p in (1, 2, 3):
            reclaimer.insert(p)
        assert sorted(reclaimer.pages()) == [1, 2, 3]


class TestLruOrdering:
    def test_victim_is_least_recently_used(self):
        lru = LruReclaim()
        for p in (1, 2, 3):
            lru.insert(p)
        lru.touch(1)
        assert lru.select_victim() == 2

    def test_insertion_order_without_touches(self):
        lru = LruReclaim()
        for p in (10, 20, 30):
            lru.insert(p)
        assert [lru.select_victim() for _ in range(3)] == [10, 20, 30]


class TestClockBehaviour:
    def test_second_chance_protects_referenced_pages(self):
        clock = ClockReclaim()
        for p in (1, 2, 3):
            clock.insert(p)
        # All pages start referenced; the first sweep clears bits, the
        # second evicts the first unreferenced page found — page 1.
        assert clock.select_victim() == 1

    def test_touched_page_survives_longer(self):
        clock = ClockReclaim()
        for p in (1, 2, 3):
            clock.insert(p)
        clock.select_victim()           # evicts 1, clears bits of 2 and 3
        clock.touch(2)
        assert clock.select_victim() == 3

    def test_remove_adjusts_hand(self):
        clock = ClockReclaim()
        for p in range(6):
            clock.insert(p)
        clock.select_victim()
        clock.remove(4)
        # Remaining operations must still behave sensibly.
        victims = [clock.select_victim() for _ in range(4)]
        assert len(set(victims)) == 4


@given(
    algorithm=st.sampled_from(["lru", "clock"]),
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "touch", "evict", "remove"]),
                  st.integers(0, 30)),
        max_size=300,
    ),
)
def test_resident_set_is_always_consistent(algorithm, ops):
    """Property: the tracker's size always equals its distinct resident pages."""
    reclaimer = make_reclaimer(algorithm)
    resident = set()
    for op, page in ops:
        if op == "insert" and page not in resident:
            reclaimer.insert(page)
            resident.add(page)
        elif op == "touch" and page in resident:
            reclaimer.touch(page)
        elif op == "remove" and page in resident:
            reclaimer.remove(page)
            resident.discard(page)
        elif op == "evict" and resident:
            victim = reclaimer.select_victim()
            assert victim in resident
            resident.discard(victim)
        assert len(reclaimer) == len(resident)
        assert set(reclaimer.pages()) == resident
