"""Tests for the page-frame reclaim algorithms (LRU and CLOCK)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError, GuestError
from repro.guest.pfra import (
    ClockArrayReclaim,
    ClockReclaim,
    LruReclaim,
    make_reclaimer,
)


@pytest.fixture(params=["lru", "clock", "clock-list"])
def reclaimer(request):
    return make_reclaimer(request.param)


class TestCommonBehaviour:
    def test_factory_rejects_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            make_reclaimer("arc")

    def test_insert_and_contains(self, reclaimer):
        reclaimer.insert(1)
        reclaimer.insert(2)
        assert 1 in reclaimer and 2 in reclaimer
        assert len(reclaimer) == 2

    def test_double_insert_rejected(self, reclaimer):
        reclaimer.insert(1)
        with pytest.raises(GuestError):
            reclaimer.insert(1)

    def test_touch_non_resident_rejected(self, reclaimer):
        with pytest.raises(GuestError):
            reclaimer.touch(5)

    def test_remove_non_resident_rejected(self, reclaimer):
        with pytest.raises(GuestError):
            reclaimer.remove(5)

    def test_victim_from_empty_rejected(self, reclaimer):
        with pytest.raises(GuestError):
            reclaimer.select_victim()

    def test_victim_is_removed(self, reclaimer):
        for p in range(5):
            reclaimer.insert(p)
        victim = reclaimer.select_victim()
        assert victim not in reclaimer
        assert len(reclaimer) == 4

    def test_remove_then_reinsert(self, reclaimer):
        reclaimer.insert(3)
        reclaimer.remove(3)
        reclaimer.insert(3)
        assert 3 in reclaimer

    def test_pages_iterates_resident_set(self, reclaimer):
        for p in (1, 2, 3):
            reclaimer.insert(p)
        assert sorted(reclaimer.pages()) == [1, 2, 3]


class TestLruOrdering:
    def test_victim_is_least_recently_used(self):
        lru = LruReclaim()
        for p in (1, 2, 3):
            lru.insert(p)
        lru.touch(1)
        assert lru.select_victim() == 2

    def test_insertion_order_without_touches(self):
        lru = LruReclaim()
        for p in (10, 20, 30):
            lru.insert(p)
        assert [lru.select_victim() for _ in range(3)] == [10, 20, 30]


class TestClockBehaviour:
    def test_second_chance_protects_referenced_pages(self):
        clock = ClockReclaim()
        for p in (1, 2, 3):
            clock.insert(p)
        # All pages start referenced; the first sweep clears bits, the
        # second evicts the first unreferenced page found — page 1.
        assert clock.select_victim() == 1

    def test_touched_page_survives_longer(self):
        clock = ClockReclaim()
        for p in (1, 2, 3):
            clock.insert(p)
        clock.select_victim()           # evicts 1, clears bits of 2 and 3
        clock.touch(2)
        assert clock.select_victim() == 3

    def test_remove_adjusts_hand(self):
        clock = ClockReclaim()
        for p in range(6):
            clock.insert(p)
        clock.select_victim()
        clock.remove(4)
        # Remaining operations must still behave sensibly.
        victims = [clock.select_victim() for _ in range(4)]
        assert len(set(victims)) == 4


@given(
    algorithm=st.sampled_from(["lru", "clock", "clock-list"]),
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "touch", "evict", "remove"]),
                  st.integers(0, 30)),
        max_size=300,
    ),
)
def test_resident_set_is_always_consistent(algorithm, ops):
    """Property: the tracker's size always equals its distinct resident pages."""
    reclaimer = make_reclaimer(algorithm)
    resident = set()
    for op, page in ops:
        if op == "insert" and page not in resident:
            reclaimer.insert(page)
            resident.add(page)
        elif op == "touch" and page in resident:
            reclaimer.touch(page)
        elif op == "remove" and page in resident:
            reclaimer.remove(page)
            resident.discard(page)
        elif op == "evict" and resident:
            victim = reclaimer.select_victim()
            assert victim in resident
            resident.discard(victim)
        assert len(reclaimer) == len(resident)
        assert set(reclaimer.pages()) == resident


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "touch", "evict", "remove",
                                   "evict3"]),
                  st.integers(0, 40)),
        max_size=400,
    ),
)
def test_array_clock_matches_reference_clock(ops):
    """ClockArrayReclaim must pick the exact victim sequence of the
    list-based reference implementation, including batch selection."""
    array = ClockArrayReclaim()
    reference = ClockReclaim()
    resident = set()
    for op, page in ops:
        if op == "insert" and page not in resident:
            array.insert(page)
            reference.insert(page)
            resident.add(page)
        elif op == "touch" and page in resident:
            array.touch(page)
            reference.touch(page)
        elif op == "remove" and page in resident:
            array.remove(page)
            reference.remove(page)
            resident.discard(page)
        elif op == "evict" and resident:
            a = array.select_victim()
            r = reference.select_victim()
            assert a == r
            resident.discard(a)
        elif op == "evict3" and len(resident) >= 3:
            batch = array.select_victims(3)
            singles = [reference.select_victim() for _ in range(3)]
            assert batch == singles
            resident.difference_update(batch)
        assert len(array) == len(reference) == len(resident)
        assert list(array.pages()) == list(reference.pages())


class TestBatchApi:
    def test_contains_all(self, reclaimer):
        for page in (1, 2, 3):
            reclaimer.insert(page)
        assert reclaimer.contains_all([1, 2, 3])
        assert reclaimer.contains_all([])
        assert not reclaimer.contains_all([1, 4])

    def test_touch_if_resident(self, reclaimer):
        reclaimer.insert(7)
        assert reclaimer.touch_if_resident(7)
        assert not reclaimer.touch_if_resident(8)

    def test_touch_many_rejects_non_resident(self, reclaimer):
        reclaimer.insert(1)
        with pytest.raises(GuestError):
            reclaimer.touch_many([1, 99])

    def test_insert_many_then_select_victims(self, reclaimer):
        reclaimer.insert_many(range(6))
        victims = reclaimer.select_victims(4)
        assert len(set(victims)) == 4
        assert len(reclaimer) == 2
        for victim in victims:
            assert victim not in reclaimer

    def test_select_victims_zero_and_overdraw(self, reclaimer):
        reclaimer.insert(1)
        assert reclaimer.select_victims(0) == []
        with pytest.raises(GuestError):
            reclaimer.select_victims(2)

    def test_lru_batch_order_matches_scalar(self):
        batch = LruReclaim()
        scalar = LruReclaim()
        for r in (batch, scalar):
            r.insert_many([1, 2, 3, 4])
        batch.touch_many([2, 1])
        for page in (2, 1):
            scalar.touch(page)
        assert batch.select_victims(4) == [
            scalar.select_victim() for _ in range(4)
        ]

    def test_lru_peek_matches_select(self):
        lru = LruReclaim()
        lru.insert_many([5, 6, 7])
        lru.touch(5)
        peeked = lru.peek_victims(2)
        assert peeked == lru.select_victims(2)

    def test_clock_peek_unsupported(self):
        clock = ClockArrayReclaim()
        clock.insert(1)
        assert clock.peek_victims(1) is None

    def test_lru_promote_burst_matches_scalar_walk(self):
        fast = LruReclaim()
        slow = LruReclaim()
        for r in (fast, slow):
            r.insert_many([10, 11, 12])
        burst = [11, 20, 10, 21]
        fast.promote_burst(burst, hit_pages=[11, 10])
        for page in burst:
            if page in slow:
                slow.touch(page)
            else:
                slow.insert(page)
        assert list(fast.pages()) == list(slow.pages())

    def test_array_clock_compaction_preserves_semantics(self):
        array = ClockArrayReclaim()
        reference = ClockReclaim()
        # Grow past the initial capacity and punch holes to force both
        # growth and compaction paths.
        for page in range(200):
            array.insert(page)
            reference.insert(page)
        for page in range(0, 200, 2):
            array.remove(page)
            reference.remove(page)
        for page in range(200, 400):
            array.insert(page)
            reference.insert(page)
        while len(reference):
            assert array.select_victim() == reference.select_victim()
