"""Tests for tmem page keys and the key--value store."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TmemKeyError, TmemPoolError
from repro.hypervisor.pages import PageKey, TmemPage
from repro.hypervisor.tmem_store import TmemStore


def make_page(pool_id=0, object_id=0, index=0, owner=1, version=1):
    return TmemPage(
        key=PageKey(pool_id, object_id, index),
        owner_vm=owner,
        version=version,
        put_time=0.0,
    )


class TestPageKey:
    def test_valid_key(self):
        key = PageKey(0, 5, 10)
        assert key.object_id == 5 and key.index == 10

    def test_negative_pool_rejected(self):
        with pytest.raises(TmemKeyError):
            PageKey(-1, 0, 0)

    def test_object_id_over_64_bits_rejected(self):
        with pytest.raises(TmemKeyError):
            PageKey(0, 2**64, 0)

    def test_index_over_32_bits_rejected(self):
        with pytest.raises(TmemKeyError):
            PageKey(0, 0, 2**32)

    def test_keys_are_hashable_and_comparable(self):
        assert PageKey(0, 1, 2) == PageKey(0, 1, 2)
        assert len({PageKey(0, 1, 2), PageKey(0, 1, 2), PageKey(0, 1, 3)}) == 2


class TestTmemPool:
    def test_insert_lookup_remove(self):
        store = TmemStore()
        pool = store.create_pool(vm_id=1)
        page = make_page(pool_id=pool.pool_id, object_id=3, index=7)
        pool.insert(page)
        assert page.key in pool
        assert pool.lookup(page.key) is page
        assert pool.remove(page.key) is page
        assert pool.lookup(page.key) is None

    def test_remove_missing_returns_none(self):
        store = TmemStore()
        pool = store.create_pool(vm_id=1)
        assert pool.remove(PageKey(pool.pool_id, 0, 0)) is None

    def test_remove_object_drops_all_its_pages(self):
        store = TmemStore()
        pool = store.create_pool(vm_id=1)
        for idx in range(5):
            pool.insert(make_page(pool_id=pool.pool_id, object_id=9, index=idx))
        pool.insert(make_page(pool_id=pool.pool_id, object_id=2, index=0))
        assert pool.remove_object(9) == 5
        assert len(pool) == 1

    def test_clear(self):
        store = TmemStore()
        pool = store.create_pool(vm_id=1)
        for idx in range(3):
            pool.insert(make_page(pool_id=pool.pool_id, index=idx))
        assert pool.clear() == 3
        assert len(pool) == 0


class TestTmemStore:
    def test_pool_ids_increase_per_vm(self):
        store = TmemStore()
        p0 = store.create_pool(vm_id=1)
        p1 = store.create_pool(vm_id=1)
        q0 = store.create_pool(vm_id=2)
        assert (p0.pool_id, p1.pool_id) == (0, 1)
        assert q0.pool_id == 0

    def test_get_pool_unknown_raises(self):
        store = TmemStore()
        with pytest.raises(TmemPoolError):
            store.get_pool(1, 0)

    def test_destroy_pool_returns_held_pages(self):
        store = TmemStore()
        pool = store.create_pool(vm_id=1)
        pool.insert(make_page(pool_id=pool.pool_id, index=1))
        pool.insert(make_page(pool_id=pool.pool_id, index=2))
        assert store.destroy_pool(1, pool.pool_id) == 2
        with pytest.raises(TmemPoolError):
            store.get_pool(1, pool.pool_id)

    def test_destroy_vm_pools(self):
        store = TmemStore()
        a = store.create_pool(vm_id=1)
        b = store.create_pool(vm_id=1, persistent=False)
        c = store.create_pool(vm_id=2)
        a.insert(make_page(pool_id=a.pool_id, index=0))
        b.insert(make_page(pool_id=b.pool_id, index=1))
        c.insert(make_page(pool_id=c.pool_id, index=2, owner=2))
        assert store.destroy_vm_pools(1) == 2
        assert store.pages_held_by(1) == 0
        assert store.pages_held_by(2) == 1

    def test_counting_helpers(self):
        store = TmemStore()
        pool = store.create_pool(vm_id=3)
        for idx in range(4):
            pool.insert(make_page(pool_id=pool.pool_id, index=idx, owner=3))
        assert store.pages_held_by(3) == 4
        assert store.total_pages() == 4
        assert store.pool_count() == 1

    @given(
        keys=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 50)), max_size=100
        )
    )
    def test_insert_is_idempotent_per_key(self, keys):
        """Inserting the same key twice keeps exactly one entry per key."""
        store = TmemStore()
        pool = store.create_pool(vm_id=1)
        for object_id, index in keys:
            pool.insert(make_page(pool_id=pool.pool_id, object_id=object_id, index=index))
        assert len(pool) == len(set(keys))


class TestRawAccessors:
    def test_lookup_insert_remove_raw(self):
        store = TmemStore()
        pool = store.create_pool(7)
        page = make_page(pool_id=pool.pool_id, object_id=3, index=9)
        pool.insert_raw(3, 9, page)
        assert pool.lookup_raw(3, 9) is page
        assert pool.lookup(page.key) is page
        assert pool.remove_raw(3, 9) is page
        assert pool.lookup_raw(3, 9) is None
        assert len(pool) == 0

    def test_insert_or_existing_returns_occupant(self):
        store = TmemStore()
        pool = store.create_pool(1)
        first = make_page(pool_id=pool.pool_id, index=4)
        second = make_page(pool_id=pool.pool_id, index=4)
        assert pool.insert_or_existing(0, 4, first) is None
        assert pool.insert_or_existing(0, 4, second) is first
        assert len(pool) == 1
        assert pool.lookup_raw(0, 4) is first

    def test_per_vm_index_survives_pool_destruction(self):
        store = TmemStore()
        a = store.create_pool(1)
        b = store.create_pool(1)
        store.create_pool(2)
        assert [p.pool_id for p in store.pools_of(1)] == [a.pool_id, b.pool_id]
        store.destroy_pool(1, a.pool_id)
        assert [p.pool_id for p in store.pools_of(1)] == [b.pool_id]
        assert store.destroy_vm_pools(1) == 0
        assert list(store.pools_of(1)) == []
        assert store.pool_count() == 1
