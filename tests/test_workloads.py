"""Tests for the workload models and access-pattern generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.sim.rng import RngFactory
from repro.units import MemoryUnits
from repro.workloads.access_patterns import (
    sequential_pages,
    shuffled_pages,
    strided_pages,
    working_set_pages,
    zipf_pages,
)
from repro.workloads.graph_analytics import GraphAnalyticsWorkload
from repro.workloads.inmemory_analytics import InMemoryAnalyticsWorkload
from repro.workloads.usemem import UsememWorkload

UNITS = MemoryUnits(page_bytes=1024 * 1024)  # 1 MiB pages keep tests small


def rng(name="w"):
    return RngFactory(99).stream(name)


# ---------------------------------------------------------------------------
# access patterns
# ---------------------------------------------------------------------------
class TestAccessPatterns:
    def test_sequential_covers_region_in_order(self):
        pages = sequential_pages(10, 5)
        assert pages.tolist() == [10, 11, 12, 13, 14]

    def test_sequential_rejects_empty_region(self):
        with pytest.raises(WorkloadError):
            sequential_pages(0, 0)

    def test_strided_visits_every_stride(self):
        pages = strided_pages(0, 10, 3)
        assert pages.tolist() == [0, 3, 6, 9]

    def test_strided_rejects_bad_stride(self):
        with pytest.raises(WorkloadError):
            strided_pages(0, 10, 0)

    def test_zipf_stays_in_region_and_is_skewed(self):
        pages = zipf_pages(100, 50, 5000, alpha=1.1, rng=rng())
        assert pages.min() >= 100 and pages.max() < 150
        counts = np.bincount(pages - 100, minlength=50)
        # The most popular page receives far more than the mean.
        assert counts.max() > 3 * counts.mean()

    def test_zipf_rejects_bad_alpha(self):
        with pytest.raises(WorkloadError):
            zipf_pages(0, 10, 10, alpha=0, rng=rng())

    def test_working_set_hot_pages_receive_hot_weight(self):
        pages = working_set_pages(
            0, 100, 10000, hot_fraction=0.1, hot_weight=0.9, rng=rng()
        )
        hot_hits = np.count_nonzero(pages < 10)
        assert 0.85 < hot_hits / len(pages) < 0.95

    def test_working_set_validates_fractions(self):
        with pytest.raises(WorkloadError):
            working_set_pages(0, 10, 10, hot_fraction=0, hot_weight=0.5, rng=rng())
        with pytest.raises(WorkloadError):
            working_set_pages(0, 10, 10, hot_fraction=0.5, hot_weight=1.5, rng=rng())

    def test_shuffled_is_a_permutation(self):
        pages = shuffled_pages(5, 20, rng=rng())
        assert sorted(pages.tolist()) == list(range(5, 25))

    @given(
        base=st.integers(0, 1000),
        num=st.integers(1, 200),
        count=st.integers(1, 500),
        alpha=st.floats(0.3, 2.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_zipf_pages_always_within_bounds(self, base, num, count, alpha):
        pages = zipf_pages(base, num, count, alpha=alpha, rng=rng("prop"))
        assert pages.shape == (count,)
        assert pages.min() >= base and pages.max() < base + num


# ---------------------------------------------------------------------------
# shared workload behaviour
# ---------------------------------------------------------------------------
def collect(workload):
    return list(workload)


class TestWorkloadProtocol:
    def test_single_use_enforced(self):
        wl = UsememWorkload(units=UNITS, rng=rng(), start_mb=4, increment_mb=4,
                            max_mb=8, steady_sweeps=0)
        collect(wl)
        with pytest.raises(WorkloadError):
            iter(wl)

    def test_steps_have_non_negative_compute_time(self):
        wl = InMemoryAnalyticsWorkload(
            units=UNITS, rng=rng(), dataset_mb=8, model_mb=4,
            growth_per_iteration_mb=2, iterations=2,
        )
        for step in wl:
            assert step.compute_time_s >= 0
            assert len(step.pages) > 0

    def test_same_seed_same_steps(self):
        def build():
            return GraphAnalyticsWorkload(
                units=UNITS, rng=RngFactory(5).stream("g"), graph_mb=8,
                rank_vectors_mb=2, iterations=2,
            )
        a = [step.pages for step in build()]
        b = [step.pages for step in build()]
        assert len(a) == len(b)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_different_seeds_differ(self):
        def build(seed):
            return GraphAnalyticsWorkload(
                units=UNITS, rng=RngFactory(seed).stream("g"), graph_mb=8,
                rank_vectors_mb=2, iterations=2,
            )
        a = np.concatenate([s.pages for s in build(1)])
        b = np.concatenate([s.pages for s in build(2)])
        assert not np.array_equal(a, b)


# ---------------------------------------------------------------------------
# usemem
# ---------------------------------------------------------------------------
class TestUsemem:
    def test_allocation_sizes(self):
        wl = UsememWorkload(units=UNITS, rng=rng(), start_mb=128,
                            increment_mb=128, max_mb=512)
        assert wl.allocation_sizes_mb() == [128, 256, 384, 512]

    def test_rejects_inconsistent_sizes(self):
        with pytest.raises(WorkloadError):
            UsememWorkload(units=UNITS, rng=rng(), start_mb=512, max_mb=128)

    def test_phase_labels_follow_allocation_sizes(self):
        wl = UsememWorkload(units=UNITS, rng=rng(), start_mb=4, increment_mb=4,
                            max_mb=8, steady_sweeps=1)
        phases = []
        for step in wl:
            if step.phase not in phases:
                phases.append(step.phase)
        assert phases == ["alloc-4MB", "alloc-8MB", "steady-8MB"]

    def test_footprint_matches_max_allocation(self):
        wl = UsememWorkload(units=UNITS, rng=rng(), start_mb=4, increment_mb=4, max_mb=16)
        assert wl.peak_footprint_pages() == UNITS.pages_from_mib(16)

    def test_touched_pages_cover_the_full_allocation(self):
        wl = UsememWorkload(units=UNITS, rng=rng(), start_mb=4, increment_mb=4,
                            max_mb=8, steady_sweeps=0)
        touched = set()
        for step in wl:
            touched.update(int(p) for p in step.pages)
        assert touched == set(range(UNITS.pages_from_mib(8)))

    def test_sweeps_are_linear(self):
        wl = UsememWorkload(units=UNITS, rng=rng(), start_mb=4, increment_mb=4,
                            max_mb=4, sweeps_per_phase=1, steady_sweeps=0)
        steps = collect(wl)
        first_sweep = np.concatenate([s.pages for s in steps])
        # first touch 0..3 then one sweep 0..3 again
        assert first_sweep.tolist() == [0, 1, 2, 3, 0, 1, 2, 3]


# ---------------------------------------------------------------------------
# in-memory-analytics
# ---------------------------------------------------------------------------
class TestInMemoryAnalytics:
    def make(self, **kwargs):
        defaults = dict(units=UNITS, rng=rng(), dataset_mb=16, model_mb=8,
                        growth_per_iteration_mb=2, iterations=3)
        defaults.update(kwargs)
        return InMemoryAnalyticsWorkload(**defaults)

    def test_phases_load_train_predict(self):
        phases = [p.name for p in self.make().phases()]
        assert phases[0] == "load"
        assert phases[-1] == "predict"
        assert "train-1" in phases and "train-3" in phases

    def test_footprint_grows_with_iterations(self):
        small = self.make(iterations=1).peak_footprint_pages()
        large = self.make(iterations=6).peak_footprint_pages()
        assert large > small

    def test_step_phases_progress_monotonically(self):
        seen = []
        for step in self.make():
            if step.phase not in seen:
                seen.append(step.phase)
        assert seen[0] == "load" and seen[-1] == "predict"
        assert seen[1:-1] == [f"train-{i}" for i in range(1, 4)]

    def test_accesses_concentrate_on_model_pages(self):
        wl = self.make(hot_weight=0.9, iterations=2)
        dataset_pages = UNITS.pages_from_mib(16)
        model_pages = UNITS.pages_from_mib(8)
        train_accesses = np.concatenate(
            [s.pages for s in wl if s.phase.startswith("train")]
        )
        in_model = np.count_nonzero(
            (train_accesses >= dataset_pages)
            & (train_accesses < dataset_pages + model_pages)
        )
        assert in_model / len(train_accesses) > 0.5

    def test_rejects_bad_parameters(self):
        with pytest.raises(WorkloadError):
            self.make(dataset_mb=0)
        with pytest.raises(WorkloadError):
            self.make(iterations=0)
        with pytest.raises(WorkloadError):
            self.make(hot_weight=0.0)
        with pytest.raises(WorkloadError):
            self.make(load_cost_factor=0.0)


# ---------------------------------------------------------------------------
# graph-analytics
# ---------------------------------------------------------------------------
class TestGraphAnalytics:
    def make(self, **kwargs):
        defaults = dict(units=UNITS, rng=rng(), graph_mb=16, rank_vectors_mb=4,
                        iterations=2)
        defaults.update(kwargs)
        return GraphAnalyticsWorkload(**defaults)

    def test_phases(self):
        names = [p.name for p in self.make().phases()]
        assert names[0] == "load-graph" and names[-1] == "write-ranks"

    def test_footprint(self):
        assert self.make().peak_footprint_pages() == UNITS.pages_from_mib(20)

    def test_load_phase_touches_whole_graph(self):
        wl = self.make()
        load_pages = set()
        for step in wl:
            if step.phase == "load-graph":
                load_pages.update(int(p) for p in step.pages)
        assert len(load_pages) == UNITS.pages_from_mib(20)

    def test_gather_accesses_are_skewed(self):
        wl = self.make(graph_mb=32, iterations=1, gather_accesses_factor=20,
                       zipf_alpha=1.1)
        graph_pages = UNITS.pages_from_mib(32)
        gathers = np.concatenate(
            [s.pages for s in wl if s.phase.startswith("pagerank")]
        )
        gathers = gathers[gathers < graph_pages]
        counts = np.bincount(gathers, minlength=graph_pages)
        assert counts.max() > 3 * counts.mean()

    def test_rejects_bad_parameters(self):
        with pytest.raises(WorkloadError):
            self.make(graph_mb=0)
        with pytest.raises(WorkloadError):
            self.make(zipf_alpha=0)

    def test_from_networkx_graph(self):
        networkx = pytest.importorskip("networkx")
        graph = networkx.barabasi_albert_graph(2000, 3, seed=7)
        wl = GraphAnalyticsWorkload.from_networkx_graph(
            graph, units=UNITS, rng=rng(), iterations=1
        )
        steps = collect(wl)
        assert steps
        assert wl.peak_footprint_pages() > 0
