"""Tests for the host memory and virtual disk models."""

import pytest
from hypothesis import given, strategies as st

from repro.config import SimulationConfig
from repro.devices.disk import VirtualDisk
from repro.devices.dram import HostMemory
from repro.errors import ConfigurationError, TmemPoolError


class TestHostMemory:
    def test_initial_state(self):
        mem = HostMemory(1000)
        assert mem.total_pages == 1000
        assert mem.unassigned_pages == 1000
        assert mem.tmem_total_pages == 0

    def test_rejects_non_positive_size(self):
        with pytest.raises(ConfigurationError):
            HostMemory(0)

    def test_reserve_vm_memory(self):
        mem = HostMemory(1000)
        mem.reserve_vm_memory(400)
        assert mem.vm_reserved_pages == 400
        assert mem.unassigned_pages == 600

    def test_cannot_over_reserve(self):
        mem = HostMemory(1000)
        with pytest.raises(ConfigurationError):
            mem.reserve_vm_memory(1001)

    def test_release_vm_memory(self):
        mem = HostMemory(1000)
        mem.reserve_vm_memory(400)
        mem.release_vm_memory(400)
        assert mem.unassigned_pages == 1000

    def test_release_more_than_reserved_rejected(self):
        mem = HostMemory(1000)
        mem.reserve_vm_memory(100)
        with pytest.raises(ConfigurationError):
            mem.release_vm_memory(200)

    def test_grow_tmem_pool_from_fallow_pages(self):
        mem = HostMemory(1000)
        mem.reserve_vm_memory(400)
        mem.grow_tmem_pool(500)
        assert mem.tmem_total_pages == 500
        assert mem.tmem_free_pages == 500
        assert mem.unassigned_pages == 100

    def test_cannot_grow_tmem_beyond_fallow(self):
        mem = HostMemory(1000)
        mem.reserve_vm_memory(800)
        with pytest.raises(ConfigurationError):
            mem.grow_tmem_pool(300)

    def test_allocate_and_free_tmem_pages(self):
        mem = HostMemory(100)
        mem.grow_tmem_pool(10)
        for _ in range(10):
            mem.allocate_tmem_page()
        assert mem.tmem_free_pages == 0
        with pytest.raises(TmemPoolError):
            mem.allocate_tmem_page()
        mem.free_tmem_page()
        assert mem.tmem_free_pages == 1

    def test_free_unused_tmem_page_rejected(self):
        mem = HostMemory(100)
        mem.grow_tmem_pool(10)
        with pytest.raises(TmemPoolError):
            mem.free_tmem_page()

    def test_check_invariants_passes_in_normal_use(self):
        mem = HostMemory(100)
        mem.reserve_vm_memory(50)
        mem.grow_tmem_pool(30)
        mem.allocate_tmem_page()
        mem.check_invariants()

    @given(ops=st.lists(st.sampled_from(["alloc", "free"]), max_size=200))
    def test_pool_accounting_never_goes_out_of_range(self, ops):
        mem = HostMemory(500)
        mem.grow_tmem_pool(64)
        for op in ops:
            try:
                if op == "alloc":
                    mem.allocate_tmem_page()
                else:
                    mem.free_tmem_page()
            except TmemPoolError:
                pass
            assert 0 <= mem.tmem_used_pages <= 64
            mem.check_invariants()


class TestVirtualDisk:
    def test_read_latency_has_seek_and_transfer(self):
        cfg = SimulationConfig()
        disk = VirtualDisk(cfg)
        latency = disk.read(0.0, 1)
        assert latency == pytest.approx(cfg.disk_latency_s(1))

    def test_requests_queue_fifo(self):
        cfg = SimulationConfig()
        disk = VirtualDisk(cfg)
        first = disk.read(0.0, 1)
        second = disk.read(0.0, 1)
        # The second request waits for the first to complete.
        assert second == pytest.approx(2 * first)

    def test_idle_gap_resets_queueing(self):
        cfg = SimulationConfig()
        disk = VirtualDisk(cfg)
        disk.read(0.0, 1)
        later = disk.read(10.0, 1)
        assert later == pytest.approx(cfg.disk_latency_s(1))

    def test_multi_page_requests_cost_more(self):
        disk = VirtualDisk(SimulationConfig())
        small = disk.read(0.0, 1)
        large = disk.read(100.0, 16)
        assert large > small

    def test_rejects_zero_page_requests(self):
        disk = VirtualDisk(SimulationConfig())
        with pytest.raises(ConfigurationError):
            disk.read(0.0, 0)

    def test_stats_accumulate(self):
        disk = VirtualDisk(SimulationConfig())
        disk.read(0.0, 2, vm_id=1)
        disk.write(0.0, 3, vm_id=1)
        disk.write(0.0, 1, vm_id=2)
        assert disk.stats.reads == 1
        assert disk.stats.writes == 2
        assert disk.stats.pages_read == 2
        assert disk.stats.pages_written == 4
        assert disk.stats.per_vm_pages_written == {1: 3, 2: 1}
        assert disk.stats.mean_latency_s() > 0

    def test_utilization_bounded(self):
        disk = VirtualDisk(SimulationConfig())
        disk.read(0.0, 1)
        assert 0.0 < disk.utilization(1.0) <= 1.0
        assert disk.utilization(0.0) == 0.0

    def test_write_asymmetry_scales_writes(self):
        cfg = SimulationConfig(disk=type(SimulationConfig().disk)(
            seek_latency_s=1e-3, transfer_latency_s=1e-5, read_write_asymmetry=2.0
        ))
        disk = VirtualDisk(cfg)
        read = disk.read(0.0, 1)
        write = disk.write(100.0, 1)
        assert write == pytest.approx(2 * read)
