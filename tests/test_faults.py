"""Tests for the deterministic fault-injection subsystem.

The load-bearing guarantees of the fault layer:

1. **Declarative and validated** — ``FaultPlan`` parses the CLI spec
   grammar, rejects malformed windows/options with the offending spec in
   the message, and topology construction cross-checks fault plans and
   migration schedules (no migrating a VM onto itself or onto a node
   that is down at that time).
2. **Deterministic chaos** — transient failures, rejoins, degraded and
   partitioned links, retries, backoff and circuit breakers are all
   driven by engine events and named RNG streams: the same (plan, seed)
   pair is bit-identical across repeated runs and across the serial and
   process execution backends.
3. **No-op plans are invisible** — zero-width windows and nominal
   degradation parameters follow the exact no-plan code path, byte for
   byte.
4. **The invariant checker is free** — enabling it cannot change a
   fingerprint, it passes on every healthy run (including mid-fault
   ones), and it raises a structured ``InvariantViolation`` the moment
   a conservation law actually breaks.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import clusterize
from repro.config import GuestConfig, SimulationConfig
from repro.cluster.epoch import epoch_fallback_reason
from repro.cluster.faults import (
    FaultPlan,
    InvariantChecker,
    LinkDegradation,
    NodeFault,
    parse_link_degradation,
    parse_node_fault,
)
from repro.cluster.sharded import ShardedClusterRunner, coupling_reason
from repro.errors import (
    ClusterError,
    FaultSpecError,
    InvariantViolation,
    ScenarioError,
)
from repro.scenarios.registry import scenario_by_name
from repro.scenarios.runner import ScenarioRunner, run_scenario
from repro.scenarios.spec import VmMigration
from repro.units import SCENARIO_UNITS

# The pinned acceptance scenario: transient vault failure with failback,
# one lossy/throttled link, one flapping partition.  Times are chosen so
# the whole fault choreography (fail -> breaker open -> heal -> breaker
# close -> rejoin -> failback) completes within the run.
FLAKY = "flaky:nodes=3,fail_at=8,down_s=6"
FAULTY = "faulty:nodes=3,fail_at=8,down_s=6"
PIN_SCALE = 0.1
PIN_SEED = 2019


# --------------------------------------------------------------------------
# Spec parsing
# --------------------------------------------------------------------------
class TestSpecParsing:
    def test_node_fault_round_trip(self):
        fault = parse_node_fault("node2@10-25:failback=1")
        assert fault == NodeFault(
            node="node2", at_s=10.0, recover_at_s=25.0, failback=True
        )
        assert parse_node_fault("vault@3.5-3.5").width_s == 0.0

    def test_link_degradation_round_trip(self):
        deg = parse_link_degradation(
            "n1->n2@10-20:bw=0.1,loss=0.05,lat=0.002,partition=1"
        )
        assert deg == LinkDegradation(
            src="n1",
            dst="n2",
            start_s=10.0,
            end_s=20.0,
            bandwidth_factor=0.1,
            loss_probability=0.05,
            extra_latency_s=0.002,
            partition=True,
        )

    @pytest.mark.parametrize("bad", [
        "node2",                      # no window
        "@10-20",                     # no node
        "node2@20-10",                # reversed window
        "node2@ten-20",               # non-numeric
        "node2@10-20:explode=1",      # unknown option
        "node2@10-20:failback=maybe", # bad boolean
    ])
    def test_bad_node_fault_specs_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            parse_node_fault(bad)

    @pytest.mark.parametrize("bad", [
        "n1-n2@10-20",                # no arrow
        "n1->n1@10-20",               # self-link
        "n1->n2@10-20:bw=0",          # zero bandwidth
        "n1->n2@10-20:bw=1.5",        # >1 bandwidth factor
        "n1->n2@10-20:loss=1",        # certain loss never delivers
        "n1->n2@10-20:widgets=3",     # unknown option
    ])
    def test_bad_degradation_specs_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            parse_link_degradation(bad)

    def test_fault_spec_error_is_a_cluster_error(self):
        assert issubclass(FaultSpecError, ClusterError)

    def test_overlapping_windows_rejected(self):
        with pytest.raises(FaultSpecError, match="overlap"):
            FaultPlan.from_specs(faults=["n2@5-15", "n2@10-20"])
        with pytest.raises(FaultSpecError, match="overlap"):
            FaultPlan.from_specs(
                degradations=["a->b@5-15:bw=0.5", "a->b@10-20:bw=0.5"]
            )
        # Disjoint windows and distinct links are fine.
        FaultPlan.from_specs(faults=["n2@5-10", "n2@10-20"])
        FaultPlan.from_specs(
            degradations=["a->b@5-15:bw=0.5", "b->a@5-15:bw=0.5"]
        )

    def test_effective_drops_noops(self):
        plan = FaultPlan.from_specs(
            faults=["n2@10-10"],
            degradations=["a->b@5-5:bw=0.1", "a->b@6-9:bw=1"],
        )
        assert plan.effective() is None
        mixed = FaultPlan.from_specs(
            faults=["n2@10-10", "n3@10-20"],
            degradations=["a->b@5-9:bw=0.5"],
        )
        effective = mixed.effective()
        assert [f.node for f in effective.node_faults] == ["n3"]
        assert len(effective.link_faults) == 1

    def test_bad_knobs_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultPlan(retry_limit=0)
        with pytest.raises(FaultSpecError):
            FaultPlan(backoff_factor=0.5)
        with pytest.raises(FaultSpecError):
            FaultPlan(retry_deadline_s=0.0)


# --------------------------------------------------------------------------
# Topology validation at construction (the new time-aware checks)
# --------------------------------------------------------------------------
def _clustered(nodes=3, **topology_kwargs):
    spec = scenario_by_name("usemem-scenario", scale=0.05)
    return clusterize(spec, nodes, **topology_kwargs)


class TestTopologyValidation:
    def test_migration_to_own_node_rejected(self):
        # Caught by the static placement check before the time-aware walk.
        with pytest.raises(ScenarioError, match="already lives"):
            _clustered(
                migrations=(
                    VmMigration(vm="n1.VM1", to_node="node1", at_s=5.0),
                ),
            )

    def test_migration_after_earlier_migration_made_it_home_rejected(self):
        # The second migration targets the node the first one already
        # moved the VM to — location tracking is time-aware.
        with pytest.raises(ClusterError, match="already lives"):
            _clustered(
                migrations=(
                    VmMigration(vm="n1.VM1", to_node="node2", at_s=5.0),
                    VmMigration(vm="n1.VM1", to_node="node2", at_s=9.0),
                ),
            )

    def test_migration_to_failed_node_rejected(self):
        from repro.scenarios.spec import NodeFailure

        with pytest.raises(ClusterError, match="already failed"):
            _clustered(
                failures=(NodeFailure(node="node2", at_s=4.0),),
                migrations=(
                    VmMigration(vm="n1.VM1", to_node="node2", at_s=6.0),
                ),
            )

    def test_migration_into_fault_window_rejected(self):
        with pytest.raises(ClusterError, match="down"):
            _clustered(
                migrations=(
                    VmMigration(vm="n1.VM1", to_node="node2", at_s=12.0),
                ),
                fault_plan=FaultPlan.from_specs(faults=["node2@10-20"]),
            )

    def test_fault_plan_unknown_node_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown node"):
            _clustered(fault_plan=FaultPlan.from_specs(faults=["ghost@5-9"]))
        with pytest.raises(FaultSpecError, match="unknown node"):
            _clustered(
                fault_plan=FaultPlan.from_specs(
                    degradations=["node1->ghost@5-9:bw=0.5"]
                )
            )

    def test_fault_on_single_node_cluster_rejected(self):
        with pytest.raises(FaultSpecError, match="single-node"):
            _clustered(
                nodes=1,
                fault_plan=FaultPlan.from_specs(faults=["node1@5-9"]),
            )

    def test_transient_fault_colliding_with_permanent_failure_rejected(self):
        from repro.scenarios.spec import NodeFailure

        with pytest.raises(FaultSpecError, match="collides"):
            _clustered(
                failures=(NodeFailure(node="node2", at_s=15.0),),
                fault_plan=FaultPlan.from_specs(faults=["node2@10-20"]),
            )

    def test_existing_schedule_checks_still_fire(self):
        from repro.scenarios.spec import NodeFailure

        with pytest.raises(ScenarioError):
            _clustered(
                failures=(
                    NodeFailure(node="node2", at_s=5.0),
                    NodeFailure(node="node2", at_s=9.0),
                ),
            )


# --------------------------------------------------------------------------
# The pinned acceptance scenario
# --------------------------------------------------------------------------
class TestFlakyAcceptance:
    @pytest.fixture(scope="class")
    def flaky_runner(self):
        spec = scenario_by_name(FLAKY, scale=PIN_SCALE)
        runner = ScenarioRunner(
            spec, "greedy", seed=PIN_SEED, check_invariants=True
        )
        result = runner.run()
        return runner, result

    def test_invariant_checker_was_live_and_clean(self, flaky_runner):
        runner, _ = flaky_runner
        # The run completing at all means zero InvariantViolations; the
        # counter proves the checker actually swept.
        assert runner.cluster.invariant_checker is not None
        assert runner.cluster.invariant_checker.checks_run > 0

    def test_breaker_opened_and_closed(self, flaky_runner):
        _, result = flaky_runner
        events = result.cluster["events"]
        states = [e["state"] for e in events if e["kind"] == "breaker"]
        assert "open" in states and "closed" in states
        assert states.index("open") < states.index("closed")

    def test_node_rejoined_and_failed_back(self, flaky_runner):
        _, result = flaky_runner
        events = result.cluster["events"]
        recoveries = [e for e in events if e["kind"] == "recovery"]
        assert len(recoveries) == 1
        assert recoveries[0]["node"] == "node2"
        assert recoveries[0]["failed_back_vms"] == ["n2.VM1"]
        failbacks = [
            e for e in events
            if e["kind"] == "migration" and e.get("failback")
        ]
        assert len(failbacks) == 1
        # The recovered node ends alive and owning its original VM.
        nodes = result.cluster["nodes"]
        assert nodes["node2"]["failed"] is False
        assert nodes["node2"]["vm_names"] == ["n2.VM1"]

    def test_degradation_visible_in_links_and_counters(self, flaky_runner):
        _, result = flaky_runner
        links = result.cluster["links"]
        assert links["node3->node1"].get("stall_s", 0) > 0
        assert sum(
            info.get("breaker_trips", 0)
            for info in result.cluster["nodes"].values()
        ) >= 1
        assert result.cluster["fault_plan"]["node_faults"]

    def test_bit_identical_across_repeated_runs(self, flaky_runner):
        _, result = flaky_runner
        spec = scenario_by_name(FLAKY, scale=PIN_SCALE)
        again = run_scenario(spec, "greedy", seed=PIN_SEED)
        assert again.fingerprint() == result.fingerprint()

    def test_bit_identical_serial_vs_process_backend(self, flaky_runner):
        _, result = flaky_runner
        spec = scenario_by_name(FLAKY, scale=PIN_SCALE)
        # Inline = serial in this process; processes = spawned workers.
        # A fault-plan topology is coupled, so both take the exact
        # single-engine path and must reproduce the shared-engine run.
        assert coupling_reason(spec) is not None
        for inline in (True, False):
            sharded = ShardedClusterRunner(
                spec, "greedy", shards=2, seed=PIN_SEED, inline=inline
            ).run()
            assert sharded.fingerprint() == result.fingerprint()

    def test_fault_plan_alone_couples_a_topology(self, flaky_runner):
        # Even with no spill/contention/migrations, a fault plan forces
        # the exact single-engine path.
        spec = _clustered(
            remote_spill=False,
            fault_plan=FaultPlan.from_specs(faults=["node2@5-9"]),
        )
        assert coupling_reason(spec) == "fault plan injects cross-node faults"

    def test_epoch_engine_refuses_fault_plans(self, flaky_runner):
        spec = scenario_by_name(FLAKY, scale=PIN_SCALE)
        assert epoch_fallback_reason(spec) == (
            "fault plan needs the exact cluster engine"
        )
        # The sharded runner under cluster_engine="epoch" falls back to
        # the exact path rather than running the plan windowed.
        runner = ShardedClusterRunner(
            spec, "greedy", shards=2, seed=PIN_SEED, inline=True,
            cluster_engine="epoch",
        )
        assert runner.epoch_fallback is not None
        _, result = flaky_runner
        assert runner.run().fingerprint() == result.fingerprint()


class TestFaultyRejoin:
    @pytest.fixture(scope="class")
    def faulty_result(self):
        spec = scenario_by_name(FAULTY, scale=PIN_SCALE)
        return run_scenario(
            spec, "greedy", seed=PIN_SEED, check_invariants=True
        )

    def test_failure_then_recovery_sequence(self, faulty_result):
        events = faulty_result.cluster["events"]
        kinds = [e["kind"] for e in events]
        assert kinds.count("failure") == 1
        assert kinds.count("recovery") == 1
        failure = next(e for e in events if e["kind"] == "failure")
        recovery = next(e for e in events if e["kind"] == "recovery")
        assert failure["at_s"] < recovery["at_s"]

    def test_rejoined_node_restarts_with_empty_pools(self, faulty_result):
        # node2's vault pool was full of spilled pages before the fault;
        # after rejoin + failback only post-recovery activity remains.
        nodes = faulty_result.cluster["nodes"]
        assert nodes["node2"]["failed"] is False
        # The recovered node's sampler restarted: its trace keeps
        # advancing after recover_at_s.
        recovery = next(
            e for e in faulty_result.cluster["events"]
            if e["kind"] == "recovery"
        )
        assert faulty_result.simulated_duration_s > recovery["at_s"]

    def test_fault_run_slower_than_fault_free_twin(self, faulty_result):
        spec = scenario_by_name(FAULTY, scale=PIN_SCALE)
        sound = replace(
            spec, topology=replace(spec.topology, fault_plan=None)
        )
        baseline = run_scenario(sound, "greedy", seed=PIN_SEED)
        assert (
            faulty_result.mean_runtime_s() >= baseline.mean_runtime_s()
        )


# --------------------------------------------------------------------------
# Property tests: determinism, checker neutrality, no-op identity
# --------------------------------------------------------------------------
@st.composite
def fault_plans(draw):
    """A small random fault plan over the flaky family's 3-node layout."""
    fail_at = draw(
        st.floats(min_value=3.0, max_value=8.0).map(lambda x: round(x, 2))
    )
    down_s = draw(
        st.floats(min_value=1.0, max_value=5.0).map(lambda x: round(x, 2))
    )
    failback = draw(st.booleans())
    faults = [
        f"node2@{fail_at}-{fail_at + down_s}:failback={int(failback)}"
    ]
    degradations = []
    if draw(st.booleans()):
        bw = draw(
            st.floats(min_value=0.2, max_value=1.0).map(lambda x: round(x, 2))
        )
        loss = draw(
            st.floats(min_value=0.0, max_value=0.3).map(lambda x: round(x, 2))
        )
        degradations.append(
            f"node1->node3@{fail_at / 2:.2f}-{fail_at + down_s:.2f}:"
            f"bw={bw},loss={loss},lat=0.001"
        )
    if draw(st.booleans()):
        degradations.append(
            f"node3->node1@{fail_at:.2f}-{fail_at + 2.0:.2f}:partition=1"
        )
    return FaultPlan.from_specs(faults, degradations)


def _plan_spec(plan):
    spec = scenario_by_name("faulty:nodes=3,fail_at=8,down_s=6", scale=0.05)
    return replace(spec, topology=replace(spec.topology, fault_plan=plan))


@settings(max_examples=8, deadline=None)
@given(plan=fault_plans(), seed=st.integers(min_value=0, max_value=2**16))
def test_same_seed_same_fingerprint_checker_neutral(plan, seed):
    """Same (plan, seed) => identical results; the checker changes nothing.

    One run has the invariant checker enabled and one does not, so a
    single property exercises determinism AND checker read-only-ness on
    the full bit-exact fingerprint — and every sweep doubles as proof
    that no random plan breaks an invariant.
    """
    spec = _plan_spec(plan)
    checked = run_scenario(spec, "greedy", seed=seed, check_invariants=True)
    plain = run_scenario(spec, "greedy", seed=seed)
    assert checked.fingerprint() == plain.fingerprint()
    assert (
        checked.aggregate_fingerprint() == plain.aggregate_fingerprint()
    )


@settings(max_examples=6, deadline=None)
@given(
    at=st.floats(min_value=1.0, max_value=20.0).map(lambda x: round(x, 3)),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_zero_width_plan_identical_to_no_plan(at, seed):
    """A plan of zero-width windows is byte-identical to no plan at all."""
    base = scenario_by_name("faulty:nodes=3,fail_at=8,down_s=6", scale=0.05)
    none_spec = replace(base, topology=replace(base.topology, fault_plan=None))
    zero = FaultPlan.from_specs(
        faults=[f"node2@{at}-{at}"],
        degradations=[
            f"node1->node2@{at}-{at}:bw=0.1,loss=0.5",
            f"node1->node3@{at}-{at + 5.0}:bw=1",  # nominal = no-op
        ],
    )
    zero_spec = replace(base, topology=replace(base.topology, fault_plan=zero))
    a = run_scenario(none_spec, "greedy", seed=seed)
    b = run_scenario(zero_spec, "greedy", seed=seed)
    assert a.fingerprint() == b.fingerprint()


def test_invariant_checker_catches_real_corruption():
    """The checker is not a rubber stamp: a broken law raises."""
    spec = scenario_by_name(FAULTY, scale=0.05)
    runner = ScenarioRunner(spec, "greedy", seed=3, check_invariants=True)
    runner.run()
    checker = runner.cluster.invariant_checker
    clean_sweeps = checker.checks_run
    checker.check()  # still healthy after the run
    assert checker.checks_run == clean_sweeps + 1
    # Simulate the coordinator minting capacity out of thin air.
    checker._expected_capacity_pages += 1
    with pytest.raises(InvariantViolation) as exc_info:
        checker.check()
    violation = exc_info.value
    assert violation.check == "capacity-conservation"
    assert violation.at_s == runner.engine.now
    assert "capacity" in str(violation)


def test_invariant_violation_is_structured():
    err = InvariantViolation("page-conservation", 1.5, "2 pages dangle")
    assert err.check == "page-conservation"
    assert err.at_s == 1.5
    assert err.details == "2 pages dangle"
    assert isinstance(err, ClusterError)


# --------------------------------------------------------------------------
# Pinned fingerprints for the fault families
# --------------------------------------------------------------------------
FAULT_PIN_PATH = Path(__file__).parent / "data" / "fault_fingerprints.json"
FAULT_PIN_SCENARIOS = (FAULTY, FLAKY)
FAULT_PIN_POLICIES = (
    "no-tmem",
    "greedy",
    "static-alloc",
    "reconf-static",
    "smart-alloc:P=2",
    "smart-alloc:P=6",
)


@pytest.fixture(scope="module")
def fault_pins() -> dict:
    assert FAULT_PIN_PATH.exists(), (
        f"{FAULT_PIN_PATH} is missing; record it with "
        "PYTHONPATH=src python tests/data/record_fingerprints.py"
    )
    return json.loads(FAULT_PIN_PATH.read_text())


def test_fault_pin_file_covers_every_combination(fault_pins):
    expected = {
        f"{scenario}|{policy}"
        for scenario in FAULT_PIN_SCENARIOS
        for policy in FAULT_PIN_POLICIES
    }
    assert expected == set(fault_pins)


@pytest.mark.parametrize("scenario", FAULT_PIN_SCENARIOS)
def test_fault_fingerprints_match_pins(fault_pins, scenario):
    config = SimulationConfig(
        units=SCENARIO_UNITS, guest=GuestConfig(access_engine="batched")
    )
    spec = scenario_by_name(scenario, scale=PIN_SCALE)
    mismatched = []
    for policy in FAULT_PIN_POLICIES:
        result = run_scenario(spec, policy, config=config, seed=PIN_SEED)
        if result.fingerprint() != fault_pins[f"{scenario}|{policy}"]:
            mismatched.append(policy)
    assert not mismatched, (
        f"{scenario}: fault-injection fingerprints diverged under "
        f"{mismatched} — chaotic runs are no longer bit-reproducible "
        "(re-record only for intentional semantic changes)"
    )
