"""Scenario registry, parametric families and the unified workload registry."""

import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    PAPER_POLICIES,
    all_scenarios,
    available_scenarios,
    bursty_scenario,
    churn_scenario,
    many_vms_scenario,
    register_scenario,
    run_scenario,
    scenario_by_name,
)
from repro.scenarios.registry import (
    paper_scenario_names,
    parse_scenario_spec,
    registered_scenarios,
)
from repro.scenarios.spec import ScenarioSpec, VMSpec, WorkloadSpec

FAMILY_SPECS = ("many-vms:n=4", "churn:n=4", "bursty:spikes=2")


class TestParseScenarioSpec:
    def test_bare_name(self):
        assert parse_scenario_spec("scenario-1") == ("scenario-1", {})

    def test_parameters(self):
        name, kwargs = parse_scenario_spec("many-vms:n=8,ram_mb=256")
        assert name == "many-vms"
        assert kwargs == {"n": 8, "ram_mb": 256}
        assert isinstance(kwargs["n"], int)

    def test_keys_are_case_insensitive(self):
        assert parse_scenario_spec("many-vms:N=8")[1] == {"n": 8}

    def test_float_values(self):
        assert parse_scenario_spec("churn:wave_s=12.5")[1] == {"wave_s": 12.5}

    def test_malformed_rejected(self):
        with pytest.raises(ScenarioError):
            parse_scenario_spec("many-vms:n")
        with pytest.raises(ScenarioError):
            parse_scenario_spec("many-vms:n=lots")


class TestRegistry:
    def test_paper_scenarios_unchanged(self):
        assert set(all_scenarios()) == {
            "scenario-1", "scenario-2", "usemem-scenario", "scenario-3",
        }
        assert paper_scenario_names() == (
            "scenario-1", "scenario-2", "usemem-scenario", "scenario-3",
        )

    def test_families_are_registered(self):
        names = available_scenarios()
        for family in ("many-vms", "churn", "bursty"):
            assert family in names
        assert registered_scenarios()["many-vms"].parameters == ("n", "ram_mb")

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ScenarioError):
            scenario_by_name("scenario-9")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ScenarioError):
            scenario_by_name("many-vms:warp=9")

    def test_register_rejects_duplicates_and_bad_names(self):
        with pytest.raises(ScenarioError):
            register_scenario("many-vms")(lambda **kw: None)
        with pytest.raises(ScenarioError):
            register_scenario("bad:name")(lambda **kw: None)

    def test_user_registration_is_selectable(self):
        name = "registry-test-family"
        assert name not in available_scenarios()

        @register_scenario(name, parameters=("n",))
        def tiny(*, scale: float = 1.0, n: int = 1) -> ScenarioSpec:
            vms = tuple(
                VMSpec(
                    name=f"VM{i}",
                    ram_mb=max(1, int(128 * scale)),
                    jobs=(WorkloadSpec(kind="usemem", start_at=0.0),),
                )
                for i in range(1, int(n) + 1)
            )
            return ScenarioSpec(
                name=name, description="test", vms=vms,
                tmem_mb=max(1, int(64 * scale)),
            )

        try:
            assert name in available_scenarios()
            spec = scenario_by_name(f"{name}:n=2", scale=0.5)
            assert len(spec.vms) == 2
        finally:
            from repro.scenarios import registry as _registry

            _registry._REGISTRY.pop(name, None)


class TestFamilies:
    def test_many_vms_scales_in_vm_count(self):
        spec = many_vms_scenario(scale=0.25, n=8)
        assert len(spec.vms) == 8
        assert spec.name == "many-vms:n=8,ram_mb=512"

    def test_family_names_distinguish_configurations(self):
        assert (
            churn_scenario(n=4, wave_s=5).name
            != churn_scenario(n=4).name
        )
        assert (
            bursty_scenario(spike_mb=256).name
            != bursty_scenario().name
        )

    def test_churn_waves_stagger_starts(self):
        spec = churn_scenario(scale=0.25, n=6, wave_s=30.0, per_wave=2)
        starts = [vm.jobs[0].start_at for vm in spec.vms]
        assert starts == [0.0, 0.0, 30.0, 30.0, 60.0, 60.0]

    def test_bursty_spikes_are_phase_triggered(self):
        spec = bursty_scenario(scale=0.25, spikes=2)
        assert len(spec.phase_triggers) == 2
        for k, trigger in enumerate(spec.phase_triggers, start=1):
            assert trigger.watch_vm == "VM1"
            assert trigger.start_vm == f"SPIKE{k}"
            assert trigger.phase_prefix == f"pagerank-{2 * k}"
        # Spike VMs must not auto-start.
        for vm in spec.vms:
            if vm.name.startswith("SPIKE"):
                assert vm.jobs[0].start_at is None

    def test_family_validation(self):
        with pytest.raises(ScenarioError):
            many_vms_scenario(n=0)
        with pytest.raises(ScenarioError):
            churn_scenario(per_wave=0)
        with pytest.raises(ScenarioError):
            bursty_scenario(spikes=4)
        for factory in (many_vms_scenario, churn_scenario, bursty_scenario):
            with pytest.raises(ScenarioError):
                factory(scale=0)

    @pytest.mark.parametrize("family_spec", FAMILY_SPECS)
    @pytest.mark.parametrize("policy", PAPER_POLICIES)
    def test_families_run_under_every_paper_policy(self, family_spec, policy):
        """Acceptance: every family completes under every paper policy."""
        spec = scenario_by_name(family_spec, scale=0.08)
        result = run_scenario(spec, policy, seed=11)
        assert result.mean_runtime_s() > 0
        assert all(vm.runs for vm in result.vms.values())


class TestWorkloadRegistry:
    def test_runner_table_is_the_shared_registry(self):
        from repro.scenarios.runner import _WORKLOAD_CLASSES
        from repro.workloads.registry import WORKLOAD_REGISTRY

        assert _WORKLOAD_CLASSES is WORKLOAD_REGISTRY

    def test_registration_is_visible_everywhere(self):
        from repro.scenarios.runner import _WORKLOAD_CLASSES
        from repro.workloads import (
            UsememWorkload,
            available_workload_kinds,
            register_workload_kind,
        )

        kind = "registry-test-workload"

        class MyWorkload(UsememWorkload):
            name = kind

        register_workload_kind(kind, MyWorkload)
        try:
            assert kind in available_workload_kinds()
            assert _WORKLOAD_CLASSES[kind] is MyWorkload
        finally:
            del _WORKLOAD_CLASSES[kind]

    def test_non_workload_rejected(self):
        from repro.workloads import register_workload_kind

        with pytest.raises(ScenarioError):
            register_workload_kind("bogus", dict)

    def test_unknown_kind_has_helpful_error(self):
        from repro.workloads.registry import workload_class

        with pytest.raises(ScenarioError, match="unknown workload kind"):
            workload_class("no-such-kind")
