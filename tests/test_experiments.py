"""Experiment orchestration: sweep specs, stores, backends, run_sweep."""

import os
import warnings

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentPoint,
    ProcessPoolBackend,
    ResultStore,
    SerialBackend,
    SweepSpec,
    available_backends,
    create_backend,
    execute_point,
    run_sweep,
)

#: One tiny, fast sweep used throughout: 2 policies x 2 seeds = 4 points.
TINY = SweepSpec(
    scenarios=("usemem-scenario",),
    policies=("greedy", "no-tmem"),
    seeds=(1, 2),
    scales=(0.1,),
)


class TestExperimentPoint:
    def test_point_id_is_filesystem_safe_and_unique(self):
        points = SweepSpec(
            scenarios=("usemem-scenario", "many-vms:n=4"),
            policies=("greedy", "smart-alloc:P=2", "smart-alloc:P=4"),
            seeds=(1, 2),
            scales=(0.1, 0.25),
        ).expand()
        ids = [p.point_id for p in points]
        assert len(set(ids)) == len(ids)
        for point_id in ids:
            assert "/" not in point_id and ":" not in point_id
            assert "," not in point_id and "=" not in point_id

    def test_dict_round_trip(self):
        point = ExperimentPoint("scenario-1", "greedy", seed=3, scale=0.5)
        assert ExperimentPoint.from_dict(point.to_dict()) == point

    def test_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentPoint("", "greedy", seed=1)
        with pytest.raises(ExperimentError):
            ExperimentPoint("scenario-1", "greedy", seed=1, scale=0)


class TestSweepSpec:
    def test_expand_is_full_cross_product(self):
        spec = SweepSpec(
            scenarios=("a", "b"), policies=("p", "q", "r"),
            seeds=(1, 2), scales=(0.1, 1.0),
        )
        points = spec.expand()
        assert len(points) == spec.size == 2 * 3 * 2 * 2
        assert len(set(points)) == len(points)
        # Scenario is the outermost axis, seeds the innermost.
        assert points[0].scenario == "a" and points[-1].scenario == "b"
        assert points[0].seed == 1 and points[1].seed == 2

    def test_empty_axes_rejected(self):
        with pytest.raises(ExperimentError):
            SweepSpec(scenarios=(), policies=("p",), seeds=(1,))
        with pytest.raises(ExperimentError):
            SweepSpec(scenarios=("a",), policies=(), seeds=(1,))
        with pytest.raises(ExperimentError):
            SweepSpec(scenarios=("a",), policies=("p",), seeds=())

    def test_duplicates_rejected(self):
        with pytest.raises(ExperimentError):
            SweepSpec(scenarios=("a", "a"), policies=("p",), seeds=(1,))

    def test_dict_round_trip(self):
        assert SweepSpec.from_dict(TINY.to_dict()) == TINY


class TestResultStore:
    def test_save_load_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        point = TINY.expand()[0]
        result = execute_point(point)
        path = store.save(point, result)
        assert path.exists()
        assert store.contains(point)
        loaded = store.load(point)
        assert loaded.fingerprint() == result.fingerprint()

    def test_missing_point_raises(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ExperimentError):
            store.load(TINY.expand()[0])

    def test_points_and_missing(self, tmp_path):
        store = ResultStore(tmp_path)
        points = TINY.expand()
        assert store.missing(points) == list(points)
        result = execute_point(points[0])
        store.save(points[0], result)
        assert store.points() == [points[0]]
        assert store.missing(points) == list(points[1:])
        assert len(store) == 1

    def test_corrupt_file_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        point = TINY.expand()[0]
        store.root.mkdir(parents=True, exist_ok=True)
        store.path_for(point).write_text("{not json")
        with pytest.raises(ExperimentError):
            store.load(point)

    def test_truncated_envelope_rejected_with_experiment_error(self, tmp_path):
        """A file cut mid-write is unreadable, not a crash with KeyError."""
        store = ResultStore(tmp_path)
        point = TINY.expand()[0]
        result = execute_point(point)
        full = store.save(point, result).read_text()
        store.path_for(point).write_text(full[: len(full) // 2])
        with pytest.raises(ExperimentError):
            store.load(point)
        # Valid JSON but a gutted envelope is equally unreadable.
        store.path_for(point).write_text('{"format_version": 1, "point": {}}')
        with pytest.raises(ExperimentError):
            store.load(point)

    def test_load_all_skips_corrupt_files_with_one_warning(self, tmp_path):
        """However many files are torn, bulk reads warn exactly once."""
        store = ResultStore(tmp_path)
        points = TINY.expand()
        good = execute_point(points[0])
        store.save(points[0], good)
        store.save(points[1], execute_point(points[1]))
        store.save(points[2], execute_point(points[2]))
        store.path_for(points[1]).write_text("{truncated")
        store.path_for(points[2]).write_text("{truncated")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            loaded = store.load_all()
        messages = [str(w.message) for w in caught]
        assert len(messages) == 1, messages
        assert "skipped 2 unreadable result file(s)" in messages[0]
        assert "e.g." in messages[0]  # an example path for debugging
        assert list(loaded) == [points[0]]
        assert loaded[points[0]].fingerprint() == good.fingerprint()

    def test_save_survives_interrupted_write(self, tmp_path, monkeypatch):
        """A save that dies between write and rename leaves no debris.

        The temp file is fsynced then os.replace'd onto the final name;
        if the process dies in between, readers must see either nothing
        or the complete file — and the failure path must clean up the
        temp file rather than litter the archive.
        """
        import repro.experiments.store as store_mod

        store = ResultStore(tmp_path)
        point = TINY.expand()[0]
        result = execute_point(point)

        def exploding_replace(src, dst):
            raise OSError("killed between fsync and rename")

        monkeypatch.setattr(store_mod.os, "replace", exploding_replace)
        with pytest.raises(OSError):
            store.save(point, result)
        monkeypatch.undo()
        assert not store.contains(point)
        assert list(tmp_path.glob("*.tmp")) == []
        # And a real save still lands atomically afterwards.
        store.save(point, result)
        assert store.load(point).fingerprint() == result.fingerprint()


class TestBackends:
    def test_create_backend(self):
        from repro.experiments import RemoteBackend

        assert set(available_backends()) == {"serial", "process", "remote"}
        assert isinstance(create_backend("serial"), SerialBackend)
        backend = create_backend("process", max_workers=2)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.max_workers == 2
        remote = create_backend("remote", max_workers=3, lease_expiry_s=1.5)
        assert isinstance(remote, RemoteBackend)
        assert remote.num_workers == 3
        assert remote.lease_expiry_s == 1.5
        with pytest.raises(ExperimentError):
            create_backend("quantum")
        with pytest.raises(ExperimentError):
            create_backend("serial", bogus_option=1)
        with pytest.raises(ExperimentError):
            ProcessPoolBackend(max_workers=0)
        with pytest.raises(ExperimentError):
            RemoteBackend(num_workers=0)

    def test_serial_backend_preserves_order_and_reports(self):
        points = TINY.expand()
        seen = []
        results = SerialBackend().run(
            points, on_result=lambda p, r: seen.append(p)
        )
        assert seen == list(points)
        assert [r.policy_spec for r in results] == [p.policy for p in points]
        assert [r.seed for r in results] == [p.seed for p in points]

    def test_process_backend_matches_serial_bit_for_bit(self):
        """The acceptance criterion: parallel == serial, per point."""
        points = TINY.expand()
        serial = SerialBackend().run(points)
        parallel = ProcessPoolBackend(max_workers=2).run(points)
        assert len(parallel) == len(serial)
        for point, s, p in zip(points, serial, parallel):
            assert p.fingerprint() == s.fingerprint(), point

    def test_process_backend_empty_input(self):
        assert ProcessPoolBackend(max_workers=1).run([]) == []

    def test_process_backend_propagates_worker_errors(self):
        bad = [ExperimentPoint("no-such-scenario", "greedy", seed=1, scale=0.1)]
        with pytest.raises(Exception):
            ProcessPoolBackend(max_workers=1).run(bad)

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 4,
        reason="parallel speedup needs >= 4 CPU cores",
    )
    def test_process_backend_speedup(self):
        """>= 2x wall-clock speedup on a 4-worker sweep of 8+ points."""
        import time

        spec = SweepSpec(
            scenarios=("usemem-scenario", "scenario-2"),
            policies=("greedy", "smart-alloc:P=2"),
            seeds=(1, 2),
            scales=(0.25,),
        )
        points = spec.expand()
        assert len(points) >= 8
        start = time.perf_counter()
        SerialBackend().run(points)
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        ProcessPoolBackend(max_workers=4).run(points)
        parallel_s = time.perf_counter() - start
        assert parallel_s < serial_s / 2, (
            f"expected >=2x speedup, got {serial_s / parallel_s:.2f}x"
        )


class TestRunSweep:
    def test_results_in_expansion_order(self):
        outcome = run_sweep(TINY)
        assert tuple(outcome.results) == TINY.expand()
        assert outcome.executed == TINY.expand()
        assert outcome.reused == ()

    def test_store_makes_sweeps_resumable(self, tmp_path):
        store = ResultStore(tmp_path)
        first = run_sweep(TINY, store=store)
        assert len(first.executed) == TINY.size
        second = run_sweep(TINY, store=store)
        assert second.executed == ()
        assert len(second.reused) == TINY.size
        for point, result in second.results.items():
            assert result.fingerprint() == first.results[point].fingerprint()

    def test_resume_reruns_corrupted_points_instead_of_crashing(self, tmp_path):
        """A truncated point JSON is skipped with a warning and re-run."""
        store = ResultStore(tmp_path)
        first = run_sweep(TINY, store=store)
        points = TINY.expand()
        # Simulate a sweep killed mid-write: one file is truncated, one
        # is outright garbage.
        full = store.path_for(points[1]).read_text()
        store.path_for(points[1]).write_text(full[: len(full) // 3])
        store.path_for(points[2]).write_text("{definitely not json")

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            second = run_sweep(TINY, store=store)
        resume_warnings = [
            str(w.message) for w in caught if "unreadable" in str(w.message)
        ]
        # One consolidated warning for both bad files, with an example.
        assert len(resume_warnings) == 1, resume_warnings
        assert "re-running 2 point(s)" in resume_warnings[0]

        assert set(second.executed) == {points[1], points[2]}
        assert set(second.reused) == {points[0], points[3]}
        # The re-run overwrote the bad files with good ones.
        third = run_sweep(TINY, store=store)
        assert third.executed == ()
        for point, result in third.results.items():
            assert result.fingerprint() == first.results[point].fingerprint()

    def test_fresh_ignores_store(self, tmp_path):
        store = ResultStore(tmp_path)
        run_sweep(TINY, store=store)
        again = run_sweep(TINY, store=store, resume=False)
        assert len(again.executed) == TINY.size

    def test_partial_store_runs_only_missing(self, tmp_path):
        store = ResultStore(tmp_path)
        points = TINY.expand()
        store.save(points[0], execute_point(points[0]))
        outcome = run_sweep(TINY, store=store)
        assert outcome.reused == (points[0],)
        assert outcome.executed == points[1:]

    def test_progress_callback_sees_every_point(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(TINY.expand()[0], execute_point(TINY.expand()[0]))
        calls = []
        run_sweep(
            TINY, store=store,
            progress=lambda p, r, reused: calls.append((p, reused)),
        )
        assert len(calls) == TINY.size
        assert sum(1 for _, reused in calls if reused) == 1

    def test_dead_lettered_points_surface_in_outcome(self):
        """A backend that gives up on a point reports it via `failed`."""
        from repro.experiments.backends import ExecutionBackend

        points = TINY.expand()
        doomed = points[1]

        class PartialBackend(ExecutionBackend):
            name = "partial"

            def run(self, pts, *, on_result=None, on_failure=None):
                out = []
                for point in pts:
                    if point == doomed:
                        on_failure(point, "retry budget exhausted")
                        out.append(None)
                        continue
                    result = execute_point(point)
                    if on_result is not None:
                        on_result(point, result)
                    out.append(result)
                return out

        outcome = run_sweep(TINY, backend=PartialBackend())
        assert not outcome.ok
        assert set(outcome.failed) == {doomed}
        assert "retry budget exhausted" in outcome.failed[doomed]
        assert doomed not in outcome.results
        assert len(outcome.results) == TINY.size - 1

    def test_select_and_by_policy(self):
        outcome = run_sweep(TINY)
        greedy = outcome.select(policy="greedy")
        assert len(greedy) == 2
        by_policy = outcome.by_policy("usemem-scenario", seed=2)
        assert list(by_policy) == ["greedy", "no-tmem"]
        assert all(r.seed == 2 for r in by_policy.values())


class TestAggregation:
    def test_aggregate_and_render(self):
        from repro.analysis.aggregate import aggregate_sweep, render_aggregate_table

        outcome = run_sweep(TINY)
        aggregates = aggregate_sweep(outcome.results)
        assert len(aggregates) == 2  # one cell per policy
        by_policy = {a.policy: a for a in aggregates}
        assert set(by_policy) == {"greedy", "no-tmem"}
        greedy = by_policy["greedy"]
        assert greedy.seeds == (1, 2)
        assert greedy.mean_runtime_s > 0
        assert greedy.std_runtime_s >= 0
        assert greedy.mean_fairness is not None
        assert by_policy["no-tmem"].mean_fairness is None
        table = render_aggregate_table(aggregates, title="T")
        assert "greedy" in table and "no-tmem" in table and "T" in table

    def test_aggregate_empty_rejected(self):
        from repro.analysis.aggregate import aggregate_sweep
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            aggregate_sweep({})
