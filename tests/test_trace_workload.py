"""Trace-driven workloads: JSONL round trip, replay and `trace record`.

A trace *is* its access sequence, so replay is deterministic by
construction; these tests pin the file format (including the per-line
error reporting), the replayer semantics (repeat, phases, footprint) and
the CLI recorder's determinism in both synthetic and scenario modes.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.errors import WorkloadError
from repro.scenarios.dsl import compile_file
from repro.scenarios.runner import run_scenario
from repro.sim.rng import RngFactory
from repro.units import MemoryUnits
from repro.workloads.base import WorkloadStep
from repro.workloads.registry import WORKLOAD_REGISTRY
from repro.workloads.trace import TraceWorkload, dump_trace_steps, load_trace_steps
from repro.workloads.usemem import UsememWorkload

REPO_ROOT = Path(__file__).resolve().parent.parent
UNITS = MemoryUnits(page_bytes=256 * 1024)

STEPS = (
    WorkloadStep(compute_time_s=0.01, pages=(0, 1, 2), frees=(), phase="load"),
    WorkloadStep(compute_time_s=0.02, pages=(1, 3), frees=(0,), phase="steady",
                 write=False),
    WorkloadStep(compute_time_s=0.0, pages=(), frees=(1, 2, 3), phase="done"),
)


def _rng():
    return RngFactory(7).stream("trace-tests")


class TestRoundTrip:
    def test_dump_then_load(self, tmp_path):
        path = tmp_path / "t.jsonl"
        count = dump_trace_steps(STEPS, path)
        assert count == len(STEPS)
        assert load_trace_steps(path) == list(STEPS)

    def test_meta_line_is_written_first_and_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        dump_trace_steps(STEPS, path, meta={"source": "unit-test", "seed": 7})
        first = json.loads(path.read_text().splitlines()[0])
        assert first["meta"]["source"] == "unit-test"
        assert load_trace_steps(path) == list(STEPS)

    def test_dump_accepts_a_live_workload(self, tmp_path):
        workload = UsememWorkload(
            units=UNITS, rng=_rng(), start_mb=32, max_mb=96, increment_mb=32,
            sweeps_per_phase=1, steady_sweeps=1,
        )
        path = tmp_path / "w.jsonl"
        count = dump_trace_steps(workload, path)
        assert count > 0
        assert len(load_trace_steps(path)) == count


class TestLoadErrors:
    def test_invalid_json_reports_the_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"pages": [1]}\nnot json\n')
        with pytest.raises(WorkloadError, match=r"bad\.jsonl:2"):
            load_trace_steps(path)

    def test_unknown_keys_report_the_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"pages": [1], "pagez": []}\n')
        with pytest.raises(WorkloadError, match="pagez"):
            load_trace_steps(path)

    def test_meta_only_allowed_on_line_1(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"pages": [1]}\n{"meta": {}}\n')
        with pytest.raises(WorkloadError, match="line 1"):
            load_trace_steps(path)

    def test_empty_trace_is_an_error(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n")
        with pytest.raises(WorkloadError, match="no steps"):
            load_trace_steps(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError, match="cannot read"):
            load_trace_steps(tmp_path / "nope.jsonl")


class TestTraceWorkload:
    def _trace(self, tmp_path, repeat=1):
        path = tmp_path / "t.jsonl"
        dump_trace_steps(STEPS, path)
        return TraceWorkload(units=UNITS, rng=_rng(), path=str(path),
                             repeat=repeat)

    def test_registered_kind(self):
        assert WORKLOAD_REGISTRY["trace"] is TraceWorkload

    def test_replays_the_steps(self, tmp_path):
        assert list(self._trace(tmp_path).generate_steps()) == list(STEPS)

    def test_repeat_concatenates(self, tmp_path):
        steps = list(self._trace(tmp_path, repeat=3).generate_steps())
        assert steps == list(STEPS) * 3

    def test_repeat_must_be_positive(self, tmp_path):
        with pytest.raises(WorkloadError, match="repeat"):
            self._trace(tmp_path, repeat=0)

    def test_phases_in_first_seen_order(self, tmp_path):
        assert [p.name for p in self._trace(tmp_path).phases()] == [
            "load", "steady", "done",
        ]

    def test_peak_footprint(self, tmp_path):
        # live pages: {0,1,2} -> {1,2,3} (0 freed, 3 added) -> {} ; peak 4
        # is hit mid-second-step before the frees apply.
        assert self._trace(tmp_path).peak_footprint_pages() == 4

    def test_scenario_replay_is_deterministic(self):
        doc = REPO_ROOT / "examples" / "dsl" / "trace-replay.yml"
        spec = compile_file(str(doc)).spec
        first = run_scenario(spec, "smart-alloc", seed=2019)
        second = run_scenario(spec, "smart-alloc", seed=2019)
        assert first.fingerprint() == second.fingerprint()


class TestTraceRecordCli:
    def test_synthetic_record_is_deterministic(self, tmp_path):
        argv = [
            "trace", "record", "--workload", "usemem",
            "--param", "start_mb=32", "--param", "max_mb=96",
            "--param", "increment_mb=32", "--param", "sweeps_per_phase=1",
            "--param", "steady_sweeps=1", "--seed", "2019",
        ]
        out1, out2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(argv + ["--out", str(out1)]) == 0
        assert main(argv + ["--out", str(out2)]) == 0
        assert out1.read_bytes() == out2.read_bytes()
        steps = load_trace_steps(out1)
        assert steps, "recorded trace must contain steps"

    def test_scenario_record_matches_the_node_stream(self, tmp_path):
        # `trace record --scenario` reproduces the exact per-VM RNG
        # stream the runner uses, so the recorded steps equal the stream
        # a hand-built twin workload emits under the same named stream.
        out = tmp_path / "vm.jsonl"
        code = main([
            "trace", "record", "--scenario", "usemem-scenario",
            "--vm", "VM1", "--job", "0", "--scale", "0.1",
            "--seed", "2019", "--out", str(out),
        ])
        assert code == 0
        recorded = load_trace_steps(out)

        from repro.scenarios.library import scenario_by_name

        spec = scenario_by_name("usemem-scenario", scale=0.1)
        vm_spec = next(vm for vm in spec.vms if vm.name == "VM1")
        job = vm_spec.jobs[0]
        rng = RngFactory(2019).stream(
            f"{spec.name}/{vm_spec.name}/{job.kind}/0"
        )
        workload_cls = WORKLOAD_REGISTRY[job.kind]
        twin = workload_cls(units=UNITS, rng=rng, **dict(job.params))

        def flat(step):
            # Live workloads may emit numpy arrays for pages; the trace
            # file stores plain ints.
            return (
                step.compute_time_s,
                tuple(int(p) for p in step.pages),
                tuple(int(p) for p in step.frees),
                step.phase,
                step.write,
            )

        assert [flat(s) for s in recorded] == [
            flat(s) for s in twin.generate_steps()
        ]

    def test_requires_exactly_one_source(self, tmp_path, capsys):
        out = str(tmp_path / "x.jsonl")
        assert main(["trace", "record", "--out", out]) != 0
        assert main([
            "trace", "record", "--out", out,
            "--workload", "usemem", "--scenario", "usemem-scenario",
        ]) != 0


def test_numpy_page_ids_survive_the_round_trip(tmp_path):
    step = WorkloadStep(
        compute_time_s=0.0,
        pages=tuple(np.arange(3, dtype=np.int64)),
        frees=(),
        phase="np",
    )
    path = tmp_path / "np.jsonl"
    dump_trace_steps([step], path)
    (loaded,) = load_trace_steps(path)
    assert loaded.pages == (0, 1, 2)
