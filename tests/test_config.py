"""Tests for the simulation configuration."""

import pytest

from repro.config import (
    DiskConfig,
    GuestConfig,
    SamplingConfig,
    SimulationConfig,
    TmemConfig,
    exact_config,
)
from repro.errors import ConfigurationError
from repro.units import MemoryUnits


class TestDiskConfig:
    def test_defaults_are_positive(self):
        cfg = DiskConfig()
        assert cfg.seek_latency_s > 0
        assert cfg.transfer_latency_s > 0

    def test_rejects_zero_seek(self):
        with pytest.raises(ConfigurationError):
            DiskConfig(seek_latency_s=0)

    def test_rejects_negative_transfer(self):
        with pytest.raises(ConfigurationError):
            DiskConfig(transfer_latency_s=-1e-6)


class TestTmemConfig:
    def test_rejects_zero_hypercall_latency(self):
        with pytest.raises(ConfigurationError):
            TmemConfig(hypercall_latency_s=0)


class TestGuestConfig:
    def test_rejects_bad_reserved_fraction(self):
        with pytest.raises(ConfigurationError):
            GuestConfig(kernel_reserved_fraction=1.0)
        with pytest.raises(ConfigurationError):
            GuestConfig(kernel_reserved_fraction=-0.1)

    def test_rejects_unknown_reclaim_algorithm(self):
        with pytest.raises(ConfigurationError):
            GuestConfig(reclaim_algorithm="random")

    def test_accepts_clock(self):
        assert GuestConfig(reclaim_algorithm="clock").reclaim_algorithm == "clock"

    def test_accepts_clock_list(self):
        config = GuestConfig(reclaim_algorithm="clock-list")
        assert config.reclaim_algorithm == "clock-list"

    def test_default_access_engine_is_batched(self):
        assert GuestConfig().access_engine == "batched"

    def test_accepts_scalar_engine(self):
        assert GuestConfig(access_engine="scalar").access_engine == "scalar"

    def test_rejects_unknown_access_engine(self):
        with pytest.raises(ConfigurationError):
            GuestConfig(access_engine="turbo")


class TestSamplingConfig:
    def test_default_interval_is_one_second(self):
        # The paper fixes the sampling interval at one second.
        assert SamplingConfig().interval_s == pytest.approx(1.0)

    def test_rejects_zero_interval(self):
        with pytest.raises(ConfigurationError):
            SamplingConfig(interval_s=0)


class TestSimulationConfig:
    def test_tmem_put_latency_includes_copy(self):
        cfg = SimulationConfig()
        assert cfg.tmem_put_latency_s > cfg.tmem.hypercall_latency_s

    def test_failed_put_is_cheaper_than_successful_put(self):
        cfg = SimulationConfig()
        assert cfg.tmem_failed_put_latency_s < cfg.tmem_put_latency_s

    def test_coarse_pages_scale_copy_latency(self):
        fine = SimulationConfig()
        coarse = SimulationConfig(units=MemoryUnits(page_bytes=64 * 4096))
        assert coarse.tmem_put_latency_s > fine.tmem_put_latency_s

    def test_disk_latency_grows_with_pages(self):
        cfg = SimulationConfig()
        assert cfg.disk_latency_s(10) > cfg.disk_latency_s(1)

    def test_disk_latency_rejects_zero_pages(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig().disk_latency_s(0)

    def test_latency_ordering_tmem_much_cheaper_than_disk(self):
        """The relative cost ordering the paper relies on must hold."""
        cfg = SimulationConfig()
        assert cfg.tmem_put_latency_s * 10 < cfg.disk_latency_s(1)

    def test_with_overrides_replaces_seed(self):
        cfg = SimulationConfig()
        assert cfg.with_overrides(seed=7).seed == 7
        assert cfg.seed != 7 or cfg.seed == 2019

    def test_describe_contains_key_fields(self):
        info = SimulationConfig().describe()
        assert "page_bytes" in info
        assert "sampling_interval_s" in info

    def test_exact_config_uses_4k_pages(self):
        assert exact_config().units.page_bytes == 4096

    def test_exact_config_accepts_overrides(self):
        assert exact_config(seed=42).seed == 42
