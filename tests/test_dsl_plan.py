"""Scenario-DSL plan printer: pinned execution plans for the examples.

``plan_dict`` output for every committed ``examples/dsl/*.yml`` document
is pinned in ``tests/data/dsl_plans.json``.  A change here means the
compiler now produces a different spec from the same document — which is
exactly the kind of silent drift the pin exists to catch.  Re-record
after intentional changes with::

    PYTHONPATH=src python tests/test_dsl_plan.py --record

Absolute paths (the trace workload resolves ``path`` against the
document's directory) are normalized to ``<repo>`` so the pin is
machine-independent.
"""

import json
from pathlib import Path

import pytest

from repro.scenarios.dsl import compile_file, format_plan, plan_dict

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples" / "dsl"
PIN_FILE = REPO_ROOT / "tests" / "data" / "dsl_plans.json"


def normalize(obj):
    """Replace the absolute repo root in strings so pins are portable."""
    if isinstance(obj, dict):
        return {key: normalize(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [normalize(value) for value in obj]
    if isinstance(obj, str):
        return obj.replace(str(REPO_ROOT), "<repo>")
    return obj


def example_names():
    return sorted(path.name for path in EXAMPLES.glob("*.yml"))


def recorded_plans():
    return {
        name: normalize(plan_dict(compile_file(str(EXAMPLES / name))))
        for name in example_names()
    }


class TestPlanPins:
    def test_pin_file_covers_every_example(self):
        pins = json.loads(PIN_FILE.read_text())
        assert sorted(pins) == example_names()

    @pytest.mark.parametrize("name", example_names())
    def test_plan_matches_pin(self, name):
        pins = json.loads(PIN_FILE.read_text())
        actual = normalize(plan_dict(compile_file(str(EXAMPLES / name))))
        assert actual == pins[name], (
            f"{name}: compiled plan drifted from tests/data/dsl_plans.json; "
            "if intentional, re-record with "
            "`PYTHONPATH=src python tests/test_dsl_plan.py --record`"
        )

    def test_plans_are_deterministic(self):
        name = example_names()[0]
        first = plan_dict(compile_file(str(EXAMPLES / name)))
        second = plan_dict(compile_file(str(EXAMPLES / name)))
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


class TestFormatPlan:
    def test_family_plan_mentions_the_family(self):
        compiled = compile_file(str(EXAMPLES / "scenario-1.yml"))
        text = format_plan(compiled)
        assert "scenario-1" in text
        assert "family" in text

    def test_cluster_plan_lists_nodes_and_faults(self):
        compiled = compile_file(str(EXAMPLES / "cluster-faults.yml"))
        text = format_plan(compiled)
        assert "node1" in text and "node2" in text
        assert "node1->node2" in text

    def test_plan_dict_has_derived_section(self):
        compiled = compile_file(str(EXAMPLES / "filescan.yml"))
        plan = plan_dict(compiled)
        derived = plan["derived"]
        assert derived["vm_count"] == 2
        assert derived["job_count"] == 2
        assert derived["total_vm_ram_mb"] == 512


if __name__ == "__main__":
    import sys

    if "--record" in sys.argv:
        PIN_FILE.write_text(
            json.dumps(recorded_plans(), indent=2, sort_keys=True) + "\n"
        )
        print(f"recorded {len(example_names())} plans to {PIN_FILE}")
    else:
        print(__doc__)
