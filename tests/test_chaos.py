"""Chaos harness: worker churn, dropped/duplicated requests, dead letters.

The headline acceptance test lives here: a RemoteBackend sweep with
chaos killing workers mid-lease and corrupting the transport produces
per-point fingerprints **bit-identical** to a plain SerialBackend run.
"""

import threading

import pytest

from repro.errors import ExperimentError, TransportError
from repro.experiments import (
    ChaosConfig,
    ChaosTransport,
    RemoteBackend,
    SerialBackend,
    SweepSpec,
    WorkerCrash,
    execute_point,
)
from repro.experiments.chaos import crashing_executor, flaky_executor
from repro.experiments.store import ResultStore
from repro.experiments.sweep import run_sweep

TINY = SweepSpec(
    scenarios=("usemem-scenario",),
    policies=("greedy", "no-tmem"),
    seeds=(1, 2),
    scales=(0.1,),
)


def fast_remote(**kwargs):
    kwargs.setdefault("num_workers", 2)
    kwargs.setdefault("lease_expiry_s", 1.0)
    kwargs.setdefault("backoff_base_s", 0.02)
    kwargs.setdefault("backoff_cap_s", 0.2)
    return RemoteBackend(**kwargs)


class RecordingTransport:
    """Test double: records every POST, replies with a canned payload."""

    def __init__(self, reply=None):
        self.posts = []
        self.reply = reply if reply is not None else {"ok": True}

    def post(self, path, kind, payload):
        self.posts.append((path, kind, payload))
        return dict(self.reply)

    def get(self, path):
        return {"path": path}


class TestChaosTransport:
    def test_no_faults_is_transparent(self):
        inner = RecordingTransport()
        chaos = ChaosTransport(inner, ChaosConfig(seed=1))
        assert chaos.post("/p", "k", {"a": 1}) == {"ok": True}
        assert chaos.get("/s") == {"path": "/s"}
        assert inner.posts == [("/p", "k", {"a": 1})]
        assert sum(chaos.injected.values()) == 0

    def test_fault_sequence_is_deterministic_per_seed(self):
        def faults(seed, n=200):
            inner = RecordingTransport()
            chaos = ChaosTransport(
                inner,
                ChaosConfig(
                    seed=seed, drop_request=0.2, drop_response=0.2, duplicate=0.2
                ),
            )
            out = []
            for i in range(n):
                try:
                    chaos.post("/p", "k", {"i": i})
                    out.append("ok")
                except TransportError as exc:
                    out.append(str(exc))
            return out, dict(chaos.injected)

        assert faults(5) == faults(5)
        assert faults(5) != faults(6)

    def test_drop_request_never_reaches_server(self):
        inner = RecordingTransport()
        chaos = ChaosTransport(inner, ChaosConfig(seed=0, drop_request=1.0))
        with pytest.raises(TransportError, match="dropped request"):
            chaos.post("/p", "k", {})
        assert inner.posts == []
        assert chaos.injected["drop_request"] == 1

    def test_drop_response_delivers_then_raises(self):
        inner = RecordingTransport()
        chaos = ChaosTransport(inner, ChaosConfig(seed=0, drop_response=1.0))
        with pytest.raises(TransportError, match="dropped response"):
            chaos.post("/p", "k", {})
        assert len(inner.posts) == 1  # the server DID act on it

    def test_duplicate_delivers_twice(self):
        inner = RecordingTransport()
        chaos = ChaosTransport(inner, ChaosConfig(seed=0, duplicate=1.0))
        assert chaos.post("/p", "k", {"x": 1}) == {"ok": True}
        assert len(inner.posts) == 2

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(drop_request=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(duplicate=-0.1)


class TestChaosExecutors:
    def test_crashing_executor_raises_worker_crash_then_recovers(self):
        calls = []
        executor = crashing_executor(
            lambda p: calls.append(p) or "ok", crash_times=2
        )
        with pytest.raises(WorkerCrash):
            executor("p1")
        with pytest.raises(WorkerCrash):
            executor("p2")
        assert executor("p3") == "ok"
        assert calls == ["p3"]

    def test_worker_crash_is_not_an_exception(self):
        # The whole point: `except Exception` must NOT catch it.
        assert not issubclass(WorkerCrash, Exception)

    def test_crash_budget_is_shared_across_threads(self):
        executor = crashing_executor(lambda p: "ok", crash_times=5)
        crashes = []

        def hammer():
            for _ in range(50):
                try:
                    executor("p")
                except WorkerCrash:
                    crashes.append(1)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(crashes) == 5

    def test_flaky_executor_fails_cleanly_then_recovers(self):
        executor = flaky_executor(lambda p: "ok", fail_times=1)
        with pytest.raises(RuntimeError, match="transient failure"):
            executor("p1")
        assert executor("p1") == "ok"


class TestRemoteBackendUnderChaos:
    def test_remote_matches_serial_fingerprints_under_chaos(self):
        """Acceptance criterion (ISSUE 6): chaos-ridden RemoteBackend
        sweep == SerialBackend sweep, fingerprint for fingerprint."""
        points = TINY.expand()
        serial = SerialBackend().run(list(points))
        backend = fast_remote(
            chaos=ChaosConfig(
                seed=7, drop_request=0.08, drop_response=0.08, duplicate=0.08
            ),
            executor=crashing_executor(execute_point, crash_times=2, seed=3),
        )
        remote = backend.run(list(points))
        assert len(remote) == len(serial)
        for s, r in zip(serial, remote):
            assert r is not None
            assert r.fingerprint() == s.fingerprint()

    def test_worker_kill_mid_lease_reassigns_and_completes(self):
        """Every initial worker dies on its first point; replacements
        finish the sweep (worker churn survival)."""
        points = TINY.expand()
        backend = fast_remote(
            num_workers=2,
            executor=crashing_executor(execute_point, crash_times=2),
        )
        results = backend.run(list(points))
        assert all(r is not None for r in results)
        serial = SerialBackend().run(list(points))
        assert [r.fingerprint() for r in results] == [
            s.fingerprint() for s in serial
        ]

    def test_transient_failures_retry_within_budget(self):
        points = TINY.expand()
        backend = fast_remote(
            max_attempts=3,
            executor=flaky_executor(execute_point, fail_times=2),
        )
        results = backend.run(list(points))
        assert all(r is not None for r in results)

    def test_permanent_failures_dead_letter_and_raise(self):
        def doomed(point):
            raise RuntimeError("this point can never work")

        backend = fast_remote(max_attempts=2, executor=doomed)
        with pytest.raises(ExperimentError, match="permanently failed"):
            backend.run(TINY.expand()[:1])

    def test_permanent_failures_reported_via_on_failure(self):
        def doomed(point):
            raise RuntimeError("this point can never work")

        failures = []
        backend = fast_remote(max_attempts=2, executor=doomed)
        results = backend.run(
            TINY.expand()[:1],
            on_failure=lambda point, error: failures.append((point, error)),
        )
        assert results == [None]
        assert len(failures) == 1
        assert "this point can never work" in failures[0][1]

    def test_out_of_workers_raises(self):
        backend = fast_remote(
            num_workers=1,
            max_worker_restarts=1,
            max_attempts=10,
            executor=crashing_executor(execute_point, crash_times=50),
        )
        with pytest.raises(ExperimentError, match="ran out of workers"):
            backend.run(TINY.expand()[:1])

    def test_run_sweep_remote_with_chaos_resumable_store(self, tmp_path):
        """Full run_sweep integration: chaos sweep persists results that
        a later serial sweep resumes without recomputation."""
        store = ResultStore(tmp_path)
        backend = fast_remote(
            chaos=ChaosConfig(seed=11, drop_response=0.1, duplicate=0.1),
            executor=crashing_executor(execute_point, crash_times=1, seed=5),
        )
        first = run_sweep(TINY, backend=backend, store=store)
        assert first.ok
        assert len(first.executed) == len(TINY.expand())
        second = run_sweep(TINY, backend=SerialBackend(), store=store)
        assert len(second.executed) == 0
        assert len(second.reused) == len(TINY.expand())
        firsts = {p: r.fingerprint() for p, r in first.results.items()}
        seconds = {p: r.fingerprint() for p, r in second.results.items()}
        assert firsts == seconds

    def test_dead_letters_surface_in_sweep_outcome(self, tmp_path):
        """run_sweep maps dead-lettered points into SweepOutcome.failed
        instead of raising, and records the good points."""
        spec = TINY

        def doomed_greedy(point):
            if point.policy == "greedy":
                raise RuntimeError("greedy sabotaged")
            return execute_point(point)

        backend = fast_remote(max_attempts=2, executor=doomed_greedy)
        outcome = run_sweep(spec, backend=backend, store=ResultStore(tmp_path))
        assert not outcome.ok
        assert len(outcome.failed) == 2  # greedy x 2 seeds
        assert all(p.policy == "greedy" for p in outcome.failed)
        assert all("greedy sabotaged" in e for e in outcome.failed.values())
        done = [p for p in outcome.results if p.policy == "no-tmem"]
        assert len(done) == 2
