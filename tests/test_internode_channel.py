"""Property tests for the queueing interconnect channel.

The contended :class:`~repro.channels.internode.InterNodeChannel` must be

* **deterministic** — the same request sequence yields the same costs,
  completion times and link counters, run after run (seeded workloads
  depend on this for bit-identical fingerprints);
* **conserving** — every enqueued transfer is delivered exactly once
  (completion events fire once per reserve/async transfer, the queue
  depth drains back to zero, page counters add up);
* **FIFO per link** — transfers on one directed link complete in the
  order they were enqueued, never overlapping: each service window
  starts no earlier than the previous one ended.

The uncontended mode must stay bit-identical to the historical
stateless cost model: a reserve returns exactly the precomputed round
trip and schedules no engine events.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channels.internode import InterNodeChannel
from repro.errors import ConfigurationError
from repro.sim.engine import SimulationEngine
from repro.sim.trace import TraceRecorder

PAGE = 4096
LATENCY = 25.0e-6
BANDWIDTH = 1.25e8


def make_channel(*, contended: bool, trace=None):
    engine = SimulationEngine()
    channel = InterNodeChannel(
        engine,
        latency_s=LATENCY,
        bandwidth_bytes_s=BANDWIDTH,
        page_bytes=PAGE,
        contended=contended,
        trace=trace,
    )
    return engine, channel


def random_requests(seed: int, count: int):
    """Deterministic stream of (at_s, src, dst, pages) requests."""
    rng = np.random.default_rng(seed)
    nodes = ["n1", "n2", "n3"]
    at = 0.0
    for _ in range(count):
        at += float(rng.uniform(0.0, 2e-4))
        src, dst = rng.choice(nodes, size=2, replace=False)
        yield at, str(src), str(dst), int(rng.integers(1, 32))


class TestUncontendedIdentity:
    def test_reserve_matches_stateless_round_trip(self):
        engine, channel = make_channel(contended=False)
        for pages in (0, 1, 7, 100):
            assert channel.reserve("a", "b", pages, 0.0) == (
                channel.round_trip_cost_s(pages)
            )

    def test_reserve_schedules_no_events(self):
        engine, channel = make_channel(contended=False)
        channel.reserve("a", "b", 5, 0.0)
        assert engine.pending_events == 0

    def test_note_transfer_accounting_is_preserved(self):
        engine, channel = make_channel(contended=False)
        channel.note_transfer(3)
        channel.reserve("a", "b", 2, 0.0)
        assert channel.pages_moved == 5
        assert channel.bytes_moved == 5 * PAGE


class TestContendedQueueing:
    def test_back_to_back_transfers_queue(self):
        engine, channel = make_channel(contended=True)
        service = 4 * channel.page_transfer_s
        first = channel.reserve("a", "b", 4, 0.0)
        second = channel.reserve("a", "b", 4, 0.0)
        assert first == channel.round_trip_cost_s(4)
        # The second transfer waits out the first one's service time.
        assert second == pytest.approx(service + channel.round_trip_cost_s(4))
        # Opposite direction is a different link: no wait.
        assert channel.reserve("b", "a", 4, 0.0) == channel.round_trip_cost_s(4)

    def test_queue_depth_traces_and_drain(self):
        trace = TraceRecorder()
        engine, channel = make_channel(contended=True, trace=trace)
        for _ in range(5):
            channel.reserve("a", "b", 10, 0.0)
        link = channel.link("a", "b")
        assert link.queue_depth == 5
        assert link.max_queue_depth == 5
        engine.run()
        assert link.queue_depth == 0
        series = trace.get("link_queue/a->b")
        values = list(series.values)
        assert max(values) == 5
        assert values[-1] == 0

    def test_zero_latency_send_is_immediate_when_uncontended(self):
        engine = SimulationEngine()
        channel = InterNodeChannel(
            engine, latency_s=0.0, bandwidth_bytes_s=BANDWIDTH,
            page_bytes=PAGE,
        )
        seen = []
        channel.send("k", 42, seen.append)
        assert seen == [42]

    def test_rejects_bad_parameters(self):
        engine = SimulationEngine()
        with pytest.raises(ConfigurationError):
            InterNodeChannel(engine, latency_s=-1.0,
                             bandwidth_bytes_s=1.0, page_bytes=PAGE)
        _, channel = make_channel(contended=True)
        with pytest.raises(ConfigurationError):
            channel.reserve("a", "b", -1, 0.0)


class TestConservationAndFifo:
    """Randomized request streams: delivery exactly once, FIFO per link."""

    @pytest.mark.parametrize("seed", [0, 1, 7, 2019])
    def test_async_transfers_conserve_and_fifo(self, seed):
        engine, channel = make_channel(contended=True)
        delivered = []
        expected_pages = 0
        order = {}
        for i, (at, src, dst, pages) in enumerate(
            random_requests(seed, 200)
        ):
            expected_pages += pages
            order.setdefault((src, dst), []).append(i)
            engine.schedule_call_at(
                at,
                (lambda s=src, d=dst, p=pages, idx=i: channel.transfer_async(
                    s, d, p,
                    lambda arg: delivered.append(arg),
                    (idx, s, d, p),
                )),
            )
        engine.run()

        # Exactly-once delivery, nothing left queued.
        assert len(delivered) == 200
        assert sorted(idx for idx, *_ in delivered) == list(range(200))
        assert channel.pages_moved == expected_pages
        for link in channel.links().values():
            assert link.queue_depth == 0

        # Per-link FIFO: deliveries on one directed link happen in
        # enqueue order.
        per_link = {}
        for idx, src, dst, _pages in delivered:
            per_link.setdefault((src, dst), []).append(idx)
        for key, got in per_link.items():
            assert got == order[key]

    @pytest.mark.parametrize("seed", [3, 11])
    def test_request_stream_is_deterministic(self, seed):
        def run_once():
            engine, channel = make_channel(contended=True)
            costs = []
            for at, src, dst, pages in random_requests(seed, 150):
                engine.schedule_call_at(
                    at,
                    (lambda s=src, d=dst, p=pages:
                     costs.append(channel.reserve(s, d, p, engine.now))),
                )
            engine.run()
            summary = {
                name: (link.transfers, link.pages, link.busy_s,
                       link.queue_wait_s, link.max_queue_depth)
                for name, link in channel.links().items()
            }
            return costs, summary

        first_costs, first_summary = run_once()
        second_costs, second_summary = run_once()
        # Bit-identical, not approximately equal.
        assert first_costs == second_costs
        assert first_summary == second_summary
        assert any(wait > 0 for *_x, wait, _d in first_summary.values())

    def test_service_windows_never_overlap(self):
        """FIFO service: each window starts after the previous ends."""
        engine, channel = make_channel(contended=True)
        windows = []
        for at, src, dst, pages in random_requests(5, 100):
            if (src, dst) != ("n1", "n2"):
                continue

            def issue(p=pages, t=at):
                link = channel.link("n1", "n2")
                before = link.busy_until
                channel.reserve("n1", "n2", p, engine.now)
                start = max(before, engine.now)
                windows.append((start, link.busy_until))

            engine.schedule_call_at(at, issue)
        engine.run()
        assert len(windows) > 5
        for (_s1, e1), (s2, _e2) in zip(windows, windows[1:]):
            assert s2 >= e1
