"""Scalar vs batched guest-memory engine equivalence.

The batched access engine must be *bit-identical* to the scalar
reference: same counters, same cumulative latency floats, same traces,
same scenario results for the same seed.  These tests drive both engines
through identical histories — kernel-level randomized bursts and full
scenario runs under every paper policy — and compare everything that is
observable.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import GuestConfig, SimulationConfig
from repro.guest.frontswap import FrontswapClient
from repro.guest.kernel import GuestKernel
from repro.hypervisor.xen import Hypervisor
from repro.scenarios.library import usemem_scenario
from repro.scenarios.runner import ScenarioRunner
from repro.sim.engine import SimulationEngine
from repro.units import SCENARIO_UNITS


def build_kernel(engine_kind, *, ram_pages, tmem_pages, reclaim="lru",
                 target=None, swap_pages=512):
    config = SimulationConfig(
        guest=GuestConfig(access_engine=engine_kind, reclaim_algorithm=reclaim)
    )
    sim = SimulationEngine()
    hv = Hypervisor(
        sim, config, host_memory_pages=4096, tmem_pool_pages=tmem_pages
    )
    record = hv.create_domain("vm", ram_pages=ram_pages)
    frontswap = None
    if tmem_pages > 0:
        hv.register_tmem_client(record.vm_id)
        frontswap = FrontswapClient(
            record.vm_id, record.frontswap_pool_id, hv.hypercalls
        )
        if target is not None:
            hv.accounting.set_target(record.vm_id, target)
    kernel = GuestKernel(
        record.vm_id,
        ram_pages=ram_pages,
        swap_pages=swap_pages,
        config=config,
        disk=hv.swap_disk,
        frontswap=frontswap,
    )
    return kernel, hv


def assert_kernels_identical(scalar, batched, hv_s, hv_b):
    assert scalar.stats == batched.stats
    assert set(scalar._resident.pages()) == set(batched._resident.pages())
    assert scalar.swap.used_pages == batched.swap.used_pages
    assert scalar.tmem_pages == batched.tmem_pages
    assert scalar.memory_footprint_pages() == batched.memory_footprint_pages()
    assert hv_s.swap_disk.stats == hv_b.swap_disk.stats
    if scalar.frontswap is not None:
        assert scalar.frontswap.stats == batched.frontswap.stats
        assert scalar.frontswap._stored == batched.frontswap._stored
        acc_s = hv_s.accounting.account(scalar.vm_id)
        acc_b = hv_b.accounting.account(batched.vm_id)
        assert acc_s == acc_b


BURSTS = st.lists(
    st.lists(st.integers(0, 50), min_size=0, max_size=40),
    min_size=1,
    max_size=25,
)


class TestKernelLevelEquivalence:
    @settings(deadline=None, max_examples=40)
    @given(bursts=BURSTS, tmem_pages=st.sampled_from([0, 3, 16, 64]),
           reclaim=st.sampled_from(["lru", "clock"]))
    def test_random_bursts(self, bursts, tmem_pages, reclaim):
        scalar, hv_s = build_kernel(
            "scalar", ram_pages=12, tmem_pages=tmem_pages, reclaim=reclaim
        )
        batched, hv_b = build_kernel(
            "batched", ram_pages=12, tmem_pages=tmem_pages, reclaim=reclaim
        )
        now = 0.0
        for burst in bursts:
            out_s = scalar.access(burst, now=now)
            out_b = batched.access(burst, now=now)
            assert out_s == out_b
            now += 0.25
        assert_kernels_identical(scalar, batched, hv_s, hv_b)

    @settings(deadline=None, max_examples=25)
    @given(bursts=BURSTS, frees=st.lists(st.integers(0, 50), max_size=20))
    def test_bursts_with_frees_and_target(self, bursts, frees):
        # A tight target forces put failures; frees exercise batched flush.
        scalar, hv_s = build_kernel(
            "scalar", ram_pages=10, tmem_pages=32, target=5
        )
        batched, hv_b = build_kernel(
            "batched", ram_pages=10, tmem_pages=32, target=5
        )
        now = 0.0
        for i, burst in enumerate(bursts):
            lat_s = scalar.access(burst, now=now).latency_s
            lat_b = batched.access(burst, now=now).latency_s
            assert lat_s == lat_b
            if i == len(bursts) // 2:
                assert scalar.free(frees, now=now) == batched.free(frees, now=now)
            now += 0.25
        assert_kernels_identical(scalar, batched, hv_s, hv_b)

    def test_sequential_sweep_matches(self):
        """The usemem-style pattern: linear sweeps over an oversized set."""
        scalar, hv_s = build_kernel("scalar", ram_pages=32, tmem_pages=24)
        batched, hv_b = build_kernel("batched", ram_pages=32, tmem_pages=24)
        now = 0.0
        for _sweep in range(4):
            for start in range(0, 64, 8):
                burst = np.arange(start, start + 8)
                out_s = scalar.access(burst, now=now)
                out_b = batched.access(burst, now=now)
                assert out_s == out_b
                now += 0.01
        assert_kernels_identical(scalar, batched, hv_s, hv_b)

    def test_intra_burst_reaccess_of_evicted_page(self):
        """A burst that re-touches a page it evicted earlier must flush the
        staged hypercall batch mid-burst and still match the scalar path."""
        scalar, hv_s = build_kernel("scalar", ram_pages=5, tmem_pages=16)
        batched, hv_b = build_kernel("batched", ram_pages=5, tmem_pages=16)
        warm = list(range(4))
        scalar.access(warm, now=0.0)
        batched.access(warm, now=0.0)
        # usable RAM is 4: page 0 is evicted when 4..7 arrive, then
        # re-accessed at the end of the same burst.
        tricky = [4, 5, 6, 7, 0, 4, 0]
        out_s = scalar.access(tricky, now=1.0)
        out_b = batched.access(tricky, now=1.0)
        assert out_s == out_b
        assert out_s.faults_from_tmem > 0
        assert_kernels_identical(scalar, batched, hv_s, hv_b)


POLICIES = ["no-tmem", "greedy", "static-alloc", "reconf-static",
            "smart-alloc:P=2"]


def run_usemem(policy, engine_kind, *, reclaim="lru", scale=0.1, seed=7):
    config = SimulationConfig(
        units=SCENARIO_UNITS,
        guest=GuestConfig(access_engine=engine_kind, reclaim_algorithm=reclaim),
    )
    runner = ScenarioRunner(
        usemem_scenario(scale=scale), policy, config=config, seed=seed
    )
    result = runner.run()
    kernel_stats = {name: vm.kernel.stats for name, vm in runner.vms.items()}
    return result, kernel_stats


class TestScenarioLevelEquivalence:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_usemem_scenario_identical(self, policy):
        scalar, stats_s = run_usemem(policy, "scalar")
        batched, stats_b = run_usemem(policy, "batched")

        # Guest kernel statistics: every counter and every cumulative
        # latency float must match exactly.
        assert stats_s == stats_b

        # Scenario results: per-VM aggregates, run timings, phase timings.
        assert scalar.vms == batched.vms
        assert scalar.simulated_duration_s == batched.simulated_duration_s
        assert scalar.snapshots == batched.snapshots
        assert scalar.target_updates == batched.target_updates

        # Tmem usage traces (the data behind Figures 4/6/8/10).
        if policy != "no-tmem":
            names_s = sorted(n for n in scalar.trace.names())
            names_b = sorted(n for n in batched.trace.names())
            assert names_s == names_b
            for name in names_s:
                series_s = scalar.trace.get(name)
                series_b = batched.trace.get(name)
                assert np.array_equal(series_s.times, series_b.times)
                assert np.array_equal(series_s.values, series_b.values)

    def test_usemem_scenario_identical_with_clock(self):
        scalar, stats_s = run_usemem("greedy", "scalar", reclaim="clock")
        batched, stats_b = run_usemem("greedy", "batched", reclaim="clock")
        assert stats_s == stats_b
        assert scalar.vms == batched.vms


class TestRelaxedEngineAggregates:
    """The vectorized ``relaxed`` engine's integer aggregates are exact.

    ``relaxed`` reassociates the float latency sums of a miss burst (it
    reduces them with numpy instead of accumulating left-to-right), so
    its full fingerprints may differ in the last float ulps — but every
    integer counter, the run/phase structure and every end-of-run trace
    value must match the batched reference bit-for-bit.  That is exactly
    what ``ScenarioResult.aggregate_fingerprint()`` hashes.
    """

    @settings(deadline=None, max_examples=5)
    @given(
        seed=st.integers(0, 10_000),
        policy=st.sampled_from(["no-tmem", "greedy", "smart-alloc:P=2"]),
    )
    def test_aggregate_fingerprints_match_batched(self, seed, policy):
        batched, _ = run_usemem(policy, "batched", seed=seed)
        relaxed, _ = run_usemem(policy, "relaxed", seed=seed)
        assert (
            relaxed.aggregate_fingerprint() == batched.aggregate_fingerprint()
        )

    def test_aggregates_match_with_clock_reclaim(self):
        batched, _ = run_usemem("greedy", "batched", reclaim="clock")
        relaxed, _ = run_usemem("greedy", "relaxed", reclaim="clock")
        assert (
            relaxed.aggregate_fingerprint() == batched.aggregate_fingerprint()
        )
