"""Pinned scenario fingerprints: the engine overhaul changes nothing.

``tests/data/scenario_fingerprints.json`` records the
``ScenarioResult.fingerprint()`` of every paper policy on the usemem
scenario, scenarios 1-3 and a three-node cluster, captured at scale 0.1
/ seed 2019 *before* the event-loop overhaul (slab events, native
recurring timers, VM fast-forward) and the duplicate-tolerant burst
planner landed.  Every simulated quantity — run times, traces, fault
counters, spill statistics — must hash identically after it: the
overhaul is a pure mechanical speedup, not a semantic change.

If a future PR intentionally changes simulation semantics, re-record
the pins with::

    PYTHONPATH=src python tests/data/record_fingerprints.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.scenarios.library import PAPER_POLICIES
from repro.scenarios.registry import scenario_by_name
from repro.scenarios.runner import run_scenario

PIN_PATH = Path(__file__).parent / "data" / "scenario_fingerprints.json"
PIN_SCALE = 0.1
PIN_SEED = 2019
PIN_SCENARIOS = (
    "usemem-scenario",
    "scenario-1",
    "scenario-2",
    "scenario-3",
    "cluster:nodes=3",
)


@pytest.fixture(scope="module")
def pins() -> dict:
    assert PIN_PATH.exists(), (
        f"{PIN_PATH} is missing; record it with "
        "PYTHONPATH=src python tests/data/record_fingerprints.py"
    )
    return json.loads(PIN_PATH.read_text())


def test_pin_file_covers_every_combination(pins):
    expected = {
        f"{scenario}|{policy}"
        for scenario in PIN_SCENARIOS
        for policy in PAPER_POLICIES
    }
    assert expected == set(pins)


@pytest.mark.parametrize("scenario", PIN_SCENARIOS)
def test_fingerprints_match_pins(pins, scenario):
    spec = scenario_by_name(scenario, scale=PIN_SCALE)
    mismatched = []
    for policy in PAPER_POLICIES:
        result = run_scenario(spec, policy, seed=PIN_SEED)
        if result.fingerprint() != pins[f"{scenario}|{policy}"]:
            mismatched.append(policy)
    assert not mismatched, (
        f"{scenario}: fingerprints diverged from the pre-overhaul pins "
        f"under {mismatched} — the engine/planner changes are no longer "
        "bit-identical"
    )


def test_fast_forward_off_matches_pins_on_usemem(pins):
    """The pins hold with fast-forward disabled too (same event order)."""
    from repro.scenarios.runner import ScenarioRunner

    spec = scenario_by_name("usemem-scenario", scale=PIN_SCALE)
    runner = ScenarioRunner(spec, "greedy", seed=PIN_SEED)
    runner.engine._fast_forward_enabled = False
    result = runner.run()
    assert result.fingerprint() == pins["usemem-scenario|greedy"]
