"""Pinned scenario fingerprints: the engine overhaul changes nothing.

``tests/data/scenario_fingerprints.json`` records the
``ScenarioResult.fingerprint()`` of every paper policy on the usemem
scenario, scenarios 1-3 and a three-node cluster, captured at scale 0.1
/ seed 2019 *before* the event-loop overhaul (slab events, native
recurring timers, VM fast-forward) and the duplicate-tolerant burst
planner landed.  Every simulated quantity — run times, traces, fault
counters, spill statistics — must hash identically after it: the
overhaul is a pure mechanical speedup, not a semantic change.

If a future PR intentionally changes simulation semantics, re-record
the pins with::

    PYTHONPATH=src python tests/data/record_fingerprints.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.scenarios.library import PAPER_POLICIES
from repro.scenarios.registry import scenario_by_name
from repro.scenarios.runner import run_scenario

PIN_PATH = Path(__file__).parent / "data" / "scenario_fingerprints.json"
RELAXED_PIN_PATH = (
    Path(__file__).parent / "data" / "scenario_fingerprints_relaxed.json"
)
PIN_SCALE = 0.1
PIN_SEED = 2019
PIN_SCENARIOS = (
    "usemem-scenario",
    "scenario-1",
    "scenario-2",
    "scenario-3",
    "cluster:nodes=3",
)


@pytest.fixture(scope="module")
def pins() -> dict:
    assert PIN_PATH.exists(), (
        f"{PIN_PATH} is missing; record it with "
        "PYTHONPATH=src python tests/data/record_fingerprints.py"
    )
    return json.loads(PIN_PATH.read_text())


def test_pin_file_covers_every_combination(pins):
    expected = {
        f"{scenario}|{policy}"
        for scenario in PIN_SCENARIOS
        for policy in PAPER_POLICIES
    }
    assert expected == set(pins)


@pytest.mark.parametrize("scenario", PIN_SCENARIOS)
def test_fingerprints_match_pins(pins, scenario):
    spec = scenario_by_name(scenario, scale=PIN_SCALE)
    mismatched = []
    for policy in PAPER_POLICIES:
        result = run_scenario(spec, policy, seed=PIN_SEED)
        if result.fingerprint() != pins[f"{scenario}|{policy}"]:
            mismatched.append(policy)
    assert not mismatched, (
        f"{scenario}: fingerprints diverged from the pre-overhaul pins "
        f"under {mismatched} — the engine/planner changes are no longer "
        "bit-identical"
    )


@pytest.fixture(scope="module")
def aggregate_pins() -> dict:
    assert RELAXED_PIN_PATH.exists(), (
        f"{RELAXED_PIN_PATH} is missing; record it with "
        "PYTHONPATH=src python tests/data/record_fingerprints.py"
    )
    return json.loads(RELAXED_PIN_PATH.read_text())


def test_aggregate_pin_file_covers_every_combination(aggregate_pins):
    expected = {
        f"{scenario}|{policy}"
        for scenario in PIN_SCENARIOS
        for policy in PAPER_POLICIES
    }
    assert expected == set(aggregate_pins)


@pytest.mark.parametrize("scenario", PIN_SCENARIOS)
def test_relaxed_engine_matches_aggregate_pins(aggregate_pins, scenario):
    """The relaxed engine's integer aggregates are pinned.

    The aggregate pins were recorded from *batched* runs, so this test
    simultaneously checks (a) the relaxed engine agrees with batched on
    every counter, run/phase structure and end-of-run trace value, and
    (b) those aggregates have not drifted since the pins were recorded.
    Only the float time accumulators (hashed by the full fingerprint)
    are allowed to differ under ``access_engine="relaxed"``.
    """
    from repro.config import GuestConfig, SimulationConfig
    from repro.units import SCENARIO_UNITS

    config = SimulationConfig(
        units=SCENARIO_UNITS, guest=GuestConfig(access_engine="relaxed")
    )
    spec = scenario_by_name(scenario, scale=PIN_SCALE)
    mismatched = []
    for policy in PAPER_POLICIES:
        result = run_scenario(spec, policy, config=config, seed=PIN_SEED)
        if (
            result.aggregate_fingerprint()
            != aggregate_pins[f"{scenario}|{policy}"]
        ):
            mismatched.append(policy)
    assert not mismatched, (
        f"{scenario}: relaxed-engine aggregates diverged from the batched "
        f"pins under {mismatched} — the relaxed replay changed an integer "
        "counter or an end-of-run trace value, not just float latency sums"
    )


EPOCH_PIN_PATH = (
    Path(__file__).parent / "data" / "scenario_fingerprints_epoch.json"
)
EPOCH_PIN_SCENARIOS = (
    "cluster:nodes=3",
    "cluster:nodes=4",
    "hotnode:",
    "contended:",
)


@pytest.fixture(scope="module")
def epoch_pins() -> dict:
    assert EPOCH_PIN_PATH.exists(), (
        f"{EPOCH_PIN_PATH} is missing; record it with "
        "PYTHONPATH=src python tests/data/record_fingerprints.py"
    )
    return json.loads(EPOCH_PIN_PATH.read_text())


def test_epoch_pin_file_covers_every_combination(epoch_pins):
    expected = {
        f"{scenario}|{policy}"
        for scenario in EPOCH_PIN_SCENARIOS
        for policy in PAPER_POLICIES
    }
    assert expected == set(epoch_pins)


@pytest.mark.parametrize("scenario", EPOCH_PIN_SCENARIOS)
def test_epoch_engine_matches_pins(epoch_pins, scenario):
    """The epoch cluster engine's aggregates are pinned per scenario.

    Epoch results intentionally differ from the exact engine's
    (cross-node effects are window-quantized), so they carry their own
    pin file.  The engine's contract makes the pins independent of the
    shard count; recording and checking at one inline shard therefore
    covers every shard configuration (tests/test_epoch.py asserts the
    invariance itself).  Re-record after intentional semantic changes
    with: PYTHONPATH=src python tests/data/record_fingerprints.py
    """
    from repro.cluster.sharded import run_scenario_sharded

    spec = scenario_by_name(scenario, scale=PIN_SCALE)
    mismatched = []
    for policy in PAPER_POLICIES:
        result = run_scenario_sharded(
            spec,
            policy,
            shards=1,
            seed=PIN_SEED,
            inline=True,
            cluster_engine="epoch",
        )
        if (
            result.aggregate_fingerprint()
            != epoch_pins[f"{scenario}|{policy}"]
        ):
            mismatched.append(policy)
    assert not mismatched, (
        f"{scenario}: epoch-engine aggregates diverged from the pins "
        f"under {mismatched} — the window protocol's results drifted"
    )


def test_fast_forward_off_matches_pins_on_usemem(pins):
    """The pins hold with fast-forward disabled too (same event order)."""
    from repro.scenarios.runner import ScenarioRunner

    spec = scenario_by_name("usemem-scenario", scale=PIN_SCALE)
    runner = ScenarioRunner(spec, "greedy", seed=PIN_SEED)
    runner.engine._fast_forward_enabled = False
    result = runner.run()
    assert result.fingerprint() == pins["usemem-scenario|greedy"]
