"""Sharded cluster execution (PR 7): fingerprint identity and safety rails.

The contract of :class:`repro.cluster.sharded.ShardedClusterRunner` is
that ``run().fingerprint()`` equals the shared-engine run's fingerprint
for *every* topology: decoupled ones genuinely run one engine per node
group, coupled ones (spill, coordinator, contention, failures,
migrations, cross-node triggers) take the exact single-engine fallback.
The property tests here randomize topology shape, seed, policy and
shard count over the decoupled ``shard`` family; dedicated tests cover
the coupled fallback, the real process path, and the clear
:class:`ClusterError` raised for scenarios a spawned worker could not
rebuild.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.sharded import (
    ShardedClusterRunner,
    _chunk,
    coupling_reason,
    resolve_shards,
    run_scenario_sharded,
)
from repro.errors import ClusterError, SimulationError
from repro.scenarios.registry import scenario_by_name
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import PhaseTrigger
from repro.workloads.registry import WORKLOAD_REGISTRY, register_workload_kind
from repro.workloads.usemem import UsememWorkload

SCALE = 0.05
POLICIES = ["no-tmem", "greedy", "smart-alloc:P=2"]


# ---------------------------------------------------------------------------
# coupling analysis
# ---------------------------------------------------------------------------
class TestCouplingReason:
    def test_shard_family_is_decoupled(self):
        spec = scenario_by_name("shard:nodes=3", scale=SCALE)
        assert coupling_reason(spec) is None

    def test_single_host_scenario(self):
        spec = scenario_by_name("usemem-scenario", scale=SCALE)
        assert "single-host" in coupling_reason(spec)

    def test_single_node_topology(self):
        spec = scenario_by_name("shard:nodes=1", scale=SCALE)
        assert "single-node" in coupling_reason(spec)

    def test_remote_spill_couples_only_with_tmem(self):
        spec = scenario_by_name("cluster:nodes=3", scale=SCALE)
        assert "spill" in coupling_reason(spec, use_tmem=True)
        # Without tmem there are no puts, hence nothing to spill: the
        # no-tmem policy decouples even a spill-enabled topology.
        assert coupling_reason(spec, use_tmem=False) is None

    def test_coordinator_couples(self):
        spec = scenario_by_name("hotnode:nodes=3", scale=SCALE)
        reason = coupling_reason(spec)
        assert "spill" in reason or "coordinator" in reason

    def test_contended_couples_even_without_tmem(self):
        spec = scenario_by_name("contended:nodes=3", scale=SCALE)
        assert "contended" in coupling_reason(spec, use_tmem=False)

    def test_failures_and_migrations_couple(self):
        from repro.scenarios.spec import NodeFailure, VmMigration

        spec = scenario_by_name("shard:nodes=2", scale=SCALE)
        failing = dataclasses.replace(
            spec,
            topology=dataclasses.replace(
                spec.topology, failures=(NodeFailure(node="node2", at_s=5.0),)
            ),
        )
        assert "fail" in coupling_reason(failing, use_tmem=False)
        migrating = dataclasses.replace(
            spec,
            topology=dataclasses.replace(
                spec.topology,
                migrations=(
                    VmMigration(vm="n1.VM1", to_node="node2", at_s=5.0),
                ),
            ),
        )
        assert "migration" in coupling_reason(migrating, use_tmem=False)
        # The coupled families themselves are caught too (their reason
        # may be an earlier check, e.g. the contended interconnect).
        assert coupling_reason(scenario_by_name("failover", scale=SCALE))
        assert coupling_reason(scenario_by_name("migrate", scale=SCALE))

    def test_cross_node_phase_trigger_couples(self):
        spec = scenario_by_name("shard:nodes=2,vms_per_node=1", scale=SCALE)
        trigger = PhaseTrigger(
            watch_vm="n1.VM1", phase_prefix="touch", start_vm="n2.VM1"
        )
        coupled = dataclasses.replace(spec, phase_triggers=(trigger,))
        assert "crosses nodes" in coupling_reason(coupled)
        # Same-node triggers stay decoupled.
        same_node = dataclasses.replace(
            scenario_by_name("shard:nodes=2", scale=SCALE),
            phase_triggers=(
                PhaseTrigger(
                    watch_vm="n1.VM1", phase_prefix="touch",
                    start_vm="n1.VM2",
                ),
            ),
        )
        assert coupling_reason(same_node) is None

    def test_stop_trigger_couples(self):
        spec = scenario_by_name("shard:nodes=2", scale=SCALE)
        stopper = PhaseTrigger(watch_vm="n1.VM1", phase_prefix="touch")
        coupled = dataclasses.replace(spec, stop_trigger=stopper)
        assert "stop trigger" in coupling_reason(coupled)


class TestResolveShards:
    def test_none_means_one(self):
        assert resolve_shards(None, 4) == 1

    def test_auto_caps_at_groups_and_cpus(self):
        import os

        count = resolve_shards("auto", 4)
        assert 1 <= count <= min(4, os.cpu_count() or 1)
        assert resolve_shards("auto", 1) == 1

    def test_integers_and_strings(self):
        assert resolve_shards(2, 4) == 2
        assert resolve_shards("3", 4) == 3  # CLI passes strings through
        assert resolve_shards(8, 3) == 3  # capped at the group count

    @pytest.mark.parametrize("bad", [0, -1, "0", "banana"])
    def test_invalid_values(self, bad):
        with pytest.raises(ClusterError):
            resolve_shards(bad, 4)


class TestChunk:
    def test_even_split(self):
        groups = [("a",), ("b",), ("c",), ("d",)]
        assert _chunk(groups, 2) == [("a", "b"), ("c", "d")]

    def test_uneven_split_keeps_every_name_once(self):
        groups = [(f"n{i}",) for i in range(5)]
        chunks = _chunk(groups, 3)
        assert len(chunks) == 3
        assert all(chunks)
        flat = [name for chunk in chunks for name in chunk]
        assert flat == [f"n{i}" for i in range(5)]

    def test_more_buckets_than_groups(self):
        chunks = _chunk([("a",), ("b",)], 5)
        assert chunks == [("a",), ("b",)]


# ---------------------------------------------------------------------------
# fingerprint identity (the core guarantee)
# ---------------------------------------------------------------------------
class TestShardedIdentity:
    @settings(deadline=None, max_examples=6)
    @given(
        nodes=st.integers(2, 3),
        vms_per_node=st.integers(1, 2),
        seed=st.integers(0, 2**31 - 1),
        shards=st.integers(1, 4),
        policy=st.sampled_from(POLICIES),
    )
    def test_decoupled_matches_shared_engine(
        self, nodes, vms_per_node, seed, shards, policy
    ):
        spec = scenario_by_name(
            f"shard:nodes={nodes},vms_per_node={vms_per_node}", scale=SCALE
        )
        shared = run_scenario(spec, policy, seed=seed)
        sharded = run_scenario_sharded(
            spec, policy, shards=shards, seed=seed, inline=True
        )
        assert sharded.fingerprint() == shared.fingerprint()

    @settings(deadline=None, max_examples=4)
    @given(
        scenario=st.sampled_from(
            ["failover", "migrate", "cluster:nodes=2", "contended:nodes=2"]
        ),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_coupled_fallback_matches_shared_engine(self, scenario, seed):
        """Coupled families (mid-run failures, migrations, spill,
        contention) stay bit-identical through the exact fallback."""
        spec = scenario_by_name(scenario, scale=SCALE)
        runner = ShardedClusterRunner(
            spec, "greedy", shards=4, seed=seed, inline=True
        )
        assert runner.exact
        assert runner.coupled_reason is not None
        shared = run_scenario(spec, "greedy", seed=seed)
        assert runner.run().fingerprint() == shared.fingerprint()

    def test_no_tmem_decouples_a_spill_topology(self):
        spec = scenario_by_name("cluster:nodes=2", scale=SCALE)
        runner = ShardedClusterRunner(
            spec, "no-tmem", shards=2, seed=11, inline=True
        )
        assert not runner.exact
        shared = run_scenario(spec, "no-tmem", seed=11)
        assert runner.run().fingerprint() == shared.fingerprint()

    def test_counters_match_shared_engine(self):
        """events_executed / pages_accessed sum to the shared run's."""
        from repro.scenarios.runner import ScenarioRunner

        spec = scenario_by_name("shard:nodes=2", scale=SCALE)
        shared_runner = ScenarioRunner(spec, "greedy", seed=3)
        shared_runner.run()
        sharded = ShardedClusterRunner(
            spec, "greedy", shards=2, seed=3, inline=True
        )
        sharded.run()
        pages = sum(
            vm.kernel.stats.accesses for vm in shared_runner.vms.values()
        )
        assert sharded.pages_accessed == pages
        assert sharded.events_executed > 0

    def test_process_mode_matches_shared_engine(self):
        """The real spawn-worker path (2 workers) is bit-identical too."""
        spec = scenario_by_name("shard:nodes=2,vms_per_node=1", scale=SCALE)
        shared = run_scenario(spec, "greedy", seed=5)
        runner = ShardedClusterRunner(spec, "greedy", shards=2, seed=5)
        assert not runner.exact
        assert len(runner.buckets) == 2
        assert runner.run().fingerprint() == shared.fingerprint()

    def test_process_mode_exact_fallback(self):
        """A coupled scenario through the worker path (1 exact worker)."""
        spec = scenario_by_name("failover", scale=SCALE)
        shared = run_scenario(spec, "greedy", seed=5)
        runner = ShardedClusterRunner(spec, "greedy", shards=2, seed=5)
        assert runner.exact
        assert runner.run().fingerprint() == shared.fingerprint()


# ---------------------------------------------------------------------------
# deadline handling
# ---------------------------------------------------------------------------
class TestDeadline:
    def test_deadline_miss_matches_shared_message(self):
        spec = dataclasses.replace(
            scenario_by_name("shard:nodes=2", scale=SCALE),
            max_duration_s=0.25,
        )
        with pytest.raises(SimulationError) as shared_err:
            run_scenario(spec, "greedy", seed=1)
        with pytest.raises(SimulationError) as sharded_err:
            run_scenario_sharded(spec, "greedy", shards=2, seed=1, inline=True)
        assert str(sharded_err.value) == str(shared_err.value)


# ---------------------------------------------------------------------------
# worker-safety rails (clear errors instead of opaque remote tracebacks)
# ---------------------------------------------------------------------------
class TestShardableValidation:
    def test_custom_workload_kind_is_rejected_for_processes(self):
        class LocalWorkload(UsememWorkload):
            pass

        register_workload_kind("sharded-test-local", LocalWorkload)
        try:
            spec = scenario_by_name("shard:nodes=2", scale=SCALE)
            vms = tuple(
                dataclasses.replace(
                    vm,
                    jobs=tuple(
                        dataclasses.replace(job, kind="sharded-test-local")
                        for job in vm.jobs
                    ),
                )
                for vm in spec.vms
            )
            custom = dataclasses.replace(spec, vms=vms)
            runner = ShardedClusterRunner(custom, "greedy", shards=2, seed=1)
            with pytest.raises(ClusterError, match="custom workload kind"):
                runner.run()
        finally:
            WORKLOAD_REGISTRY.pop("sharded-test-local", None)

    def test_unknown_workload_kind_is_rejected(self):
        spec = scenario_by_name("shard:nodes=2", scale=SCALE)
        vms = tuple(
            dataclasses.replace(
                vm,
                jobs=tuple(
                    dataclasses.replace(job, kind="no-such-kind")
                    for job in vm.jobs
                ),
            )
            for vm in spec.vms
        )
        broken = dataclasses.replace(spec, vms=vms)
        runner = ShardedClusterRunner(broken, "greedy", shards=2, seed=1)
        with pytest.raises(ClusterError, match="not registered"):
            runner.run()

    def test_unpicklable_spec_is_rejected(self):
        spec = scenario_by_name("shard:nodes=2", scale=SCALE)
        first = spec.vms[0]
        poisoned_job = dataclasses.replace(
            first.jobs[0],
            params={**first.jobs[0].params, "hook": lambda: None},
        )
        vms = (
            dataclasses.replace(first, jobs=(poisoned_job,)),
        ) + spec.vms[1:]
        unpicklable = dataclasses.replace(spec, vms=vms)
        runner = ShardedClusterRunner(unpicklable, "greedy", shards=2, seed=1)
        with pytest.raises(ClusterError, match="not serializable"):
            runner.run()
