"""Tests for the statistics sampler (VIRQ) and hypercall interface."""

import pytest

from repro.config import SimulationConfig
from repro.errors import HypercallError
from repro.hypervisor.accounting import UNLIMITED_TARGET
from repro.hypervisor.pages import PageKey
from repro.hypervisor.xen import Hypervisor
from repro.sim.engine import SimulationEngine


def build_node(tmem_pages=64, vm_count=2):
    engine = SimulationEngine()
    config = SimulationConfig()
    hv = Hypervisor(engine, config, host_memory_pages=4096, tmem_pool_pages=tmem_pages)
    records = []
    for i in range(vm_count):
        record = hv.create_domain(f"vm{i+1}", ram_pages=256)
        hv.register_tmem_client(record.vm_id)
        records.append(record)
    return engine, hv, records


class TestSampler:
    def test_sampler_fires_every_interval(self):
        engine, hv, _ = build_node()
        hv.start()
        engine.run(until=5.5)
        assert len(hv.sampler.history) == 5
        times = [snap.time for snap in hv.sampler.history]
        assert times == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_snapshot_contains_every_registered_vm(self):
        engine, hv, records = build_node(vm_count=3)
        hv.start()
        engine.run(until=1.0)
        snap = hv.sampler.history[0]
        assert snap.vm_count == 3
        assert {s.vm_id for s in snap.vms} == {r.vm_id for r in records}

    def test_interval_counters_reset_after_snapshot(self):
        engine, hv, records = build_node()
        vm = records[0]
        hv.start()
        hv.backend.put(vm.vm_id, vm.frontswap_pool_id, PageKey(0, 0, 1), version=1, now=0.0)
        engine.run(until=1.0)
        first = hv.sampler.history[0].vm(vm.vm_id)
        assert first.puts_total == 1
        engine.run(until=2.0)
        second = hv.sampler.history[1].vm(vm.vm_id)
        assert second.puts_total == 0          # per-interval counter was reset
        assert second.tmem_used == 1           # usage carries over

    def test_snapshot_reports_free_and_total_tmem(self):
        engine, hv, records = build_node(tmem_pages=10)
        vm = records[0]
        hv.backend.put(vm.vm_id, vm.frontswap_pool_id, PageKey(0, 0, 1), version=1, now=0.0)
        snap = hv.sampler.sample_now()
        assert snap.total_tmem == 10
        assert snap.free_tmem == 9

    def test_trace_records_tmem_usage_per_vm(self):
        engine, hv, records = build_node()
        vm = records[0]
        hv.start()
        hv.backend.put(vm.vm_id, vm.frontswap_pool_id, PageKey(0, 0, 1), version=1, now=0.0)
        engine.run(until=2.0)
        series = hv.trace.get(f"tmem_used/vm{vm.vm_id}")
        assert series.values.tolist() == [1.0, 1.0]

    def test_listeners_receive_snapshots(self):
        engine, hv, _ = build_node()
        received = []
        hv.sampler.subscribe(received.append)
        hv.start()
        engine.run(until=3.0)
        assert len(received) == 3

    def test_stop_cancels_future_samples(self):
        engine, hv, _ = build_node()
        hv.start()
        engine.run(until=2.0)
        hv.stop()
        engine.run(until=10.0)
        assert len(hv.sampler.history) == 2

    def test_snapshot_vm_lookup_unknown_raises(self):
        engine, hv, _ = build_node()
        snap = hv.sampler.sample_now()
        with pytest.raises(KeyError):
            snap.vm(999)


class TestHypercallInterface:
    def test_unregistered_domain_rejected(self):
        engine, hv, _ = build_node()
        with pytest.raises(HypercallError):
            hv.hypercalls.tmem_put(42, 0, PageKey(0, 0, 0), version=1, now=0.0)

    def test_put_returns_latency(self):
        engine, hv, records = build_node()
        vm = records[0]
        result, latency = hv.hypercalls.tmem_put(
            vm.vm_id, vm.frontswap_pool_id, PageKey(0, 0, 0), version=1, now=0.0
        )
        assert result.succeeded
        assert latency == pytest.approx(hv.config.tmem_put_latency_s)

    def test_failed_put_charges_only_hypercall_cost(self):
        engine, hv, records = build_node(tmem_pages=1)
        vm = records[0]
        hv.hypercalls.tmem_put(vm.vm_id, vm.frontswap_pool_id, PageKey(0, 0, 0), version=1, now=0.0)
        result, latency = hv.hypercalls.tmem_put(
            vm.vm_id, vm.frontswap_pool_id, PageKey(0, 0, 1), version=1, now=0.0
        )
        assert not result.succeeded
        assert latency == pytest.approx(hv.config.tmem_failed_put_latency_s)

    def test_set_targets_installs_targets(self):
        engine, hv, records = build_node()
        hv.hypercalls.register_domain(Hypervisor.PRIVILEGED_DOMAIN_ID)
        targets = {records[0].vm_id: 5, records[1].vm_id: 7}
        hv.hypercalls.tmem_set_targets(Hypervisor.PRIVILEGED_DOMAIN_ID, targets)
        assert hv.accounting.account(records[0].vm_id).mm_target == 5
        assert hv.accounting.account(records[1].vm_id).mm_target == 7

    def test_clear_targets_restores_unlimited(self):
        engine, hv, records = build_node()
        hv.hypercalls.register_domain(Hypervisor.PRIVILEGED_DOMAIN_ID)
        hv.hypercalls.tmem_set_targets(Hypervisor.PRIVILEGED_DOMAIN_ID, {records[0].vm_id: 5})
        hv.hypercalls.tmem_clear_targets(Hypervisor.PRIVILEGED_DOMAIN_ID)
        assert hv.accounting.account(records[0].vm_id).mm_target == UNLIMITED_TARGET

    def test_hypercall_stats_accumulate(self):
        engine, hv, records = build_node()
        vm = records[0]
        hv.hypercalls.tmem_put(vm.vm_id, vm.frontswap_pool_id, PageKey(0, 0, 0), version=1, now=0.0)
        hv.hypercalls.tmem_get(vm.vm_id, vm.frontswap_pool_id, PageKey(0, 0, 0))
        stats = hv.hypercalls.stats_for(vm.vm_id)
        assert stats.calls == {"put": 1, "get": 1}
        assert stats.total_calls == 2
        assert stats.total_latency_s > 0

    def test_double_registration_rejected(self):
        engine, hv, records = build_node()
        with pytest.raises(HypercallError):
            hv.hypercalls.register_domain(records[0].vm_id)
