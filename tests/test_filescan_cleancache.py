"""File-backed scans and the cleancache path in end-to-end scenarios.

The ``filescan`` workload reads a file set through the page cache;
evicted *clean* pages spill into an ephemeral cleancache tmem pool, and
its counters surface as ``VmResult.cleancache``.  The key contracts:
the engines stay equivalent on the cleancache path, anonymous-only VMs
(and therefore all historical results) serialize byte-identically
without a ``cleancache`` key, and round trips preserve fingerprints.
"""

import pytest

from repro.config import GuestConfig, SimulationConfig
from repro.scenarios.results import ScenarioResult
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec, VMSpec, WorkloadSpec
from repro.units import SCENARIO_UNITS
from repro.workloads.filescan import FileScanWorkload
from repro.workloads.registry import WORKLOAD_REGISTRY


def filescan_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="filescan-test",
        description="file-backed scan next to an anonymous workload",
        tmem_mb=128,
        vms=(
            VMSpec(
                name="filer",
                ram_mb=64,
                jobs=(
                    WorkloadSpec(
                        kind="filescan",
                        params={"file_mb": 96, "passes": 2},
                    ),
                ),
            ),
            VMSpec(
                name="anon",
                ram_mb=64,
                jobs=(
                    WorkloadSpec(
                        kind="usemem",
                        params={"start_mb": 32, "max_mb": 96,
                                "increment_mb": 32},
                    ),
                ),
            ),
        ),
    )


def run(spec, engine_kind, policy="smart-alloc"):
    config = SimulationConfig(
        units=SCENARIO_UNITS,
        guest=GuestConfig(access_engine=engine_kind),
    )
    return run_scenario(spec, policy, config=config, seed=2019)


class TestCleancacheCounters:
    def test_registered_and_flagged(self):
        assert WORKLOAD_REGISTRY["filescan"] is FileScanWorkload
        assert FileScanWorkload.uses_cleancache is True

    def test_filescan_vm_reports_cleancache(self):
        result = run(filescan_spec(), "batched")
        counters = result.vm("filer").cleancache
        assert counters is not None
        for key in ("puts", "hits", "misses", "invalidates"):
            assert key in counters
        # The scan actually exercised the pool.
        assert counters["puts"] > 0
        assert counters["hits"] + counters["misses"] > 0

    def test_anon_vm_has_no_cleancache(self):
        result = run(filescan_spec(), "batched")
        assert result.vm("anon").cleancache is None

    def test_frontswap_only_results_have_no_cleancache_key(self):
        spec = ScenarioSpec(
            name="anon-only",
            description="",
            tmem_mb=64,
            vms=(
                VMSpec(
                    name="VM1",
                    ram_mb=64,
                    jobs=(
                        WorkloadSpec(
                            kind="usemem",
                            params={"start_mb": 32, "max_mb": 96,
                                    "increment_mb": 32},
                        ),
                    ),
                ),
            ),
        )
        result = run(spec, "batched")
        data = result.to_dict()
        # Historical serialized results predate the cleancache counters;
        # anonymous-only runs must keep their byte-identical form.
        assert "cleancache" not in data["vms"]["VM1"]


class TestEngineEquivalence:
    def test_scalar_and_batched_identical(self):
        scalar = run(filescan_spec(), "scalar")
        batched = run(filescan_spec(), "batched")
        assert scalar.fingerprint() == batched.fingerprint()
        assert scalar.vm("filer").cleancache == batched.vm("filer").cleancache

    def test_relaxed_aggregates_match_batched(self):
        batched = run(filescan_spec(), "batched")
        relaxed = run(filescan_spec(), "relaxed")
        assert (
            batched.aggregate_fingerprint() == relaxed.aggregate_fingerprint()
        )
        assert batched.vm("filer").cleancache == relaxed.vm("filer").cleancache

    @pytest.mark.parametrize("policy", ["greedy", "no-tmem"])
    def test_other_policies_run_clean(self, policy):
        result = run(filescan_spec(), "batched", policy=policy)
        assert result.vm("filer").runs, "the scan must complete at least one run"


class TestSerialization:
    def test_round_trip_preserves_fingerprint(self):
        result = run(filescan_spec(), "batched")
        clone = ScenarioResult.from_dict(result.to_dict())
        assert clone.fingerprint() == result.fingerprint()
        assert clone.vm("filer").cleancache == result.vm("filer").cleancache

    def test_round_trip_without_cleancache(self):
        result = run(filescan_spec(), "batched")
        data = result.to_dict()
        del data["vms"]["filer"]["cleancache"]
        clone = ScenarioResult.from_dict(data)
        assert clone.vm("filer").cleancache is None


class TestDeterminism:
    def test_same_seed_same_fingerprint(self):
        first = run(filescan_spec(), "batched")
        second = run(filescan_spec(), "batched")
        assert first.fingerprint() == second.fingerprint()

    def test_seed_changes_the_run(self):
        config = SimulationConfig(units=SCENARIO_UNITS)
        first = run_scenario(filescan_spec(), "smart-alloc", config=config,
                             seed=1)
        second = run_scenario(filescan_spec(), "smart-alloc", config=config,
                              seed=2)
        assert first.fingerprint() != second.fingerprint()
