"""Re-record tests/data/scenario_fingerprints*.json.

Run this only when a PR *intentionally* changes simulation semantics;
the pins exist so that pure-performance PRs can prove they changed
nothing.  Usage::

    PYTHONPATH=src python tests/data/record_fingerprints.py

Two files are written:

* ``scenario_fingerprints.json`` — the full bit-exact
  ``ScenarioResult.fingerprint()`` of every (scenario, policy) pin
  point under the default (batched) guest engine.
* ``scenario_fingerprints_relaxed.json`` — the
  ``ScenarioResult.aggregate_fingerprint()`` of the same points.  The
  aggregate hash covers only integer counters, run/phase structure and
  end-of-run trace values, which every access engine — including the
  float-reassociating ``relaxed`` one — must reproduce exactly; the
  pin test re-runs these points under ``relaxed`` and compares.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.config import GuestConfig, SimulationConfig
from repro.scenarios.library import PAPER_POLICIES
from repro.scenarios.registry import scenario_by_name
from repro.scenarios.runner import run_scenario
from repro.units import SCENARIO_UNITS

SCENARIOS = (
    "usemem-scenario",
    "scenario-1",
    "scenario-2",
    "scenario-3",
    "cluster:nodes=3",
)


def main() -> None:
    pins = {}
    aggregate_pins = {}
    config = SimulationConfig(
        units=SCENARIO_UNITS, guest=GuestConfig(access_engine="batched")
    )
    for scenario in SCENARIOS:
        spec = scenario_by_name(scenario, scale=0.1)
        for policy in PAPER_POLICIES:
            result = run_scenario(spec, policy, config=config, seed=2019)
            pins[f"{scenario}|{policy}"] = result.fingerprint()
            aggregate_pins[f"{scenario}|{policy}"] = (
                result.aggregate_fingerprint()
            )
    here = Path(__file__).parent
    path = here / "scenario_fingerprints.json"
    path.write_text(json.dumps(pins, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(pins)} pins to {path}")
    relaxed_path = here / "scenario_fingerprints_relaxed.json"
    relaxed_path.write_text(
        json.dumps(aggregate_pins, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {len(aggregate_pins)} aggregate pins to {relaxed_path}")


if __name__ == "__main__":
    main()
