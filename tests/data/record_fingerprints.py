"""Re-record tests/data/scenario_fingerprints*.json.

Run this only when a PR *intentionally* changes simulation semantics;
the pins exist so that pure-performance PRs can prove they changed
nothing.  Usage::

    PYTHONPATH=src python tests/data/record_fingerprints.py

Two files are written:

* ``scenario_fingerprints.json`` — the full bit-exact
  ``ScenarioResult.fingerprint()`` of every (scenario, policy) pin
  point under the default (batched) guest engine.
* ``scenario_fingerprints_relaxed.json`` — the
  ``ScenarioResult.aggregate_fingerprint()`` of the same points.  The
  aggregate hash covers only integer counters, run/phase structure and
  end-of-run trace values, which every access engine — including the
  float-reassociating ``relaxed`` one — must reproduce exactly; the
  pin test re-runs these points under ``relaxed`` and compares.
* ``scenario_fingerprints_epoch.json`` — the aggregate fingerprint of
  the coupled cluster pin points run under the **epoch** cluster engine
  (``cluster_engine="epoch"``, one inline shard).  Epoch results differ
  from the exact engine's by design (window-quantized cross-node
  effects), so they carry their own pins; the engine's contract makes
  them invariant across shard counts, so recording at one shard pins
  every shard configuration.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cluster.sharded import run_scenario_sharded
from repro.config import GuestConfig, SimulationConfig
from repro.scenarios.library import PAPER_POLICIES
from repro.scenarios.registry import scenario_by_name
from repro.scenarios.runner import run_scenario
from repro.units import SCENARIO_UNITS

SCENARIOS = (
    "usemem-scenario",
    "scenario-1",
    "scenario-2",
    "scenario-3",
    "cluster:nodes=3",
)

#: Coupled cluster pin points for the epoch engine (spill+coordinator,
#: hot-node imbalance, contended interconnect).
EPOCH_SCENARIOS = (
    "cluster:nodes=3",
    "cluster:nodes=4",
    "hotnode:",
    "contended:",
)

#: Fault-injection pin points (transient failure + rejoin + failback;
#: flaky adds a lossy/throttled link and a flapping partition).  The
#: fault windows are shortened so the whole choreography — fail, breaker
#: open, heal, breaker close, rejoin, failback — completes within the
#: ~22 s the scenario simulates at scale 0.1.  A policy subset keeps the
#: recording fast; the full 9-policy sweep runs un-pinned in CI.
FAULT_SCENARIOS = (
    "faulty:nodes=3,fail_at=8,down_s=6",
    "flaky:nodes=3,fail_at=8,down_s=6",
)
FAULT_POLICIES = (
    "no-tmem",
    "greedy",
    "static-alloc",
    "reconf-static",
    "smart-alloc:P=2",
    "smart-alloc:P=6",
)


def main() -> None:
    pins = {}
    aggregate_pins = {}
    config = SimulationConfig(
        units=SCENARIO_UNITS, guest=GuestConfig(access_engine="batched")
    )
    for scenario in SCENARIOS:
        spec = scenario_by_name(scenario, scale=0.1)
        for policy in PAPER_POLICIES:
            result = run_scenario(spec, policy, config=config, seed=2019)
            pins[f"{scenario}|{policy}"] = result.fingerprint()
            aggregate_pins[f"{scenario}|{policy}"] = (
                result.aggregate_fingerprint()
            )
    here = Path(__file__).parent
    path = here / "scenario_fingerprints.json"
    path.write_text(json.dumps(pins, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(pins)} pins to {path}")
    relaxed_path = here / "scenario_fingerprints_relaxed.json"
    relaxed_path.write_text(
        json.dumps(aggregate_pins, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {len(aggregate_pins)} aggregate pins to {relaxed_path}")

    epoch_pins = {}
    for scenario in EPOCH_SCENARIOS:
        spec = scenario_by_name(scenario, scale=0.1)
        for policy in PAPER_POLICIES:
            result = run_scenario_sharded(
                spec,
                policy,
                shards=1,
                config=config,
                seed=2019,
                inline=True,
                cluster_engine="epoch",
            )
            epoch_pins[f"{scenario}|{policy}"] = (
                result.aggregate_fingerprint()
            )
    epoch_path = here / "scenario_fingerprints_epoch.json"
    epoch_path.write_text(
        json.dumps(epoch_pins, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {len(epoch_pins)} epoch pins to {epoch_path}")

    fault_pins = {}
    for scenario in FAULT_SCENARIOS:
        spec = scenario_by_name(scenario, scale=0.1)
        for policy in FAULT_POLICIES:
            result = run_scenario(spec, policy, config=config, seed=2019)
            fault_pins[f"{scenario}|{policy}"] = result.fingerprint()
    fault_path = here / "fault_fingerprints.json"
    fault_path.write_text(
        json.dumps(fault_pins, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {len(fault_pins)} fault pins to {fault_path}")


if __name__ == "__main__":
    main()
