"""Re-record tests/data/scenario_fingerprints.json.

Run this only when a PR *intentionally* changes simulation semantics;
the pins exist so that pure-performance PRs can prove they changed
nothing.  Usage::

    PYTHONPATH=src python tests/data/record_fingerprints.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.scenarios.library import PAPER_POLICIES
from repro.scenarios.registry import scenario_by_name
from repro.scenarios.runner import run_scenario

SCENARIOS = (
    "usemem-scenario",
    "scenario-1",
    "scenario-2",
    "scenario-3",
    "cluster:nodes=3",
)


def main() -> None:
    pins = {}
    for scenario in SCENARIOS:
        spec = scenario_by_name(scenario, scale=0.1)
        for policy in PAPER_POLICIES:
            result = run_scenario(spec, policy, seed=2019)
            pins[f"{scenario}|{policy}"] = result.fingerprint()
    path = Path(__file__).parent / "scenario_fingerprints.json"
    path.write_text(json.dumps(pins, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(pins)} pins to {path}")


if __name__ == "__main__":
    main()
