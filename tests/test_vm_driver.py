"""Tests for the VirtualMachine workload driver."""

import pytest

from repro.config import SimulationConfig
from repro.guest.vm import VirtualMachine
from repro.hypervisor.xen import Hypervisor
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RngFactory
from repro.units import MemoryUnits
from repro.workloads.usemem import UsememWorkload

UNITS = MemoryUnits(page_bytes=1024 * 1024)  # 1 MiB pages


def build_vm(tmem_pages=64, ram_mb=16, use_tmem=True):
    engine = SimulationEngine()
    config = SimulationConfig(units=UNITS)
    hv = Hypervisor(engine, config, host_memory_pages=4096, tmem_pool_pages=tmem_pages)
    vm = VirtualMachine(
        hv, engine, config,
        name="VM1",
        ram_pages=UNITS.pages_from_mib(ram_mb),
        swap_pages=UNITS.pages_from_mib(256),
        use_tmem=use_tmem,
    )
    return engine, hv, vm


def usemem_factory(max_mb=32, **kwargs):
    def factory():
        return UsememWorkload(
            units=UNITS,
            rng=RngFactory(3).stream("usemem"),
            start_mb=8, increment_mb=8, max_mb=max_mb,
            steady_sweeps=0, **kwargs,
        )
    return factory


class TestJobExecution:
    def test_single_job_runs_to_completion(self):
        engine, hv, vm = build_vm()
        vm.add_job(usemem_factory(), label="usemem")
        vm.start()
        engine.run()
        assert vm.is_idle
        assert len(vm.runs) == 1
        run = vm.runs[0]
        assert run.finished and not run.stopped_early
        assert run.duration_s > 0
        assert run.steps_executed > 0

    def test_phase_durations_recorded_in_order(self):
        engine, hv, vm = build_vm()
        vm.add_job(usemem_factory(max_mb=24), label="usemem")
        vm.start()
        engine.run()
        run = vm.runs[0]
        assert run.phase_order == ["alloc-8MB", "alloc-16MB", "alloc-24MB"]
        assert set(run.phase_durations) == set(run.phase_order)
        assert sum(run.phase_durations.values()) == pytest.approx(run.duration_s, rel=1e-6)

    def test_two_jobs_run_sequentially_with_delay(self):
        engine, hv, vm = build_vm()
        vm.add_job(usemem_factory(max_mb=16), label="first")
        vm.add_job(usemem_factory(max_mb=16), label="second", delay_after_previous=5.0)
        vm.start()
        engine.run()
        assert len(vm.runs) == 2
        first, second = vm.runs
        assert second.start_time == pytest.approx(first.end_time + 5.0)

    def test_absolute_start_time(self):
        engine, hv, vm = build_vm()
        vm.add_job(usemem_factory(max_mb=16), start_at=30.0, label="late")
        vm.start()
        engine.run()
        assert vm.runs[0].start_time == pytest.approx(30.0)

    def test_memory_freed_after_each_job(self):
        engine, hv, vm = build_vm(tmem_pages=16, ram_mb=8)
        vm.add_job(usemem_factory(max_mb=32), label="usemem")
        vm.start()
        engine.run()
        assert vm.kernel.memory_footprint_pages() == 0
        assert vm.tmem_pages == 0
        assert hv.host_memory.tmem_used_pages == 0

    def test_no_tmem_vm_never_touches_the_pool(self):
        engine, hv, vm = build_vm(tmem_pages=64, ram_mb=8, use_tmem=False)
        vm.add_job(usemem_factory(max_mb=32), label="usemem")
        vm.start()
        engine.run()
        assert hv.host_memory.tmem_used_pages == 0
        assert vm.kernel.stats.evictions_to_disk > 0


class TestObserversAndStop:
    def test_phase_listener_fires_for_each_phase(self):
        engine, hv, vm = build_vm()
        observed = []
        vm.on_phase_change(lambda v, phase, t: observed.append(phase))
        vm.add_job(usemem_factory(max_mb=24), label="usemem")
        vm.start()
        engine.run()
        assert observed == ["alloc-8MB", "alloc-16MB", "alloc-24MB"]

    def test_completion_listener_fires(self):
        engine, hv, vm = build_vm()
        completed = []
        vm.on_run_complete(lambda v, run: completed.append(run.workload_name))
        vm.add_job(usemem_factory(max_mb=16), label="usemem")
        vm.start()
        engine.run()
        assert completed == ["usemem"]

    def test_request_stop_ends_run_early(self):
        engine, hv, vm = build_vm()
        vm.on_phase_change(
            lambda v, phase, t: v.request_stop() if phase == "alloc-16MB" else None
        )
        vm.add_job(usemem_factory(max_mb=32), label="usemem")
        vm.start()
        engine.run()
        run = vm.runs[0]
        assert run.stopped_early
        assert "alloc-32MB" not in run.phase_order
        assert vm.is_idle

    def test_stop_also_cancels_queued_jobs(self):
        engine, hv, vm = build_vm()
        vm.add_job(usemem_factory(max_mb=16), label="first")
        vm.add_job(usemem_factory(max_mb=16), label="second")
        vm.on_phase_change(lambda v, phase, t: v.request_stop())
        vm.start()
        engine.run()
        assert len([r for r in vm.runs if r.finished]) == 1

    def test_runtime_with_tmem_is_faster_than_without(self):
        """End-to-end sanity: tmem absorbs the swap traffic."""
        engine_a, hv_a, vm_a = build_vm(tmem_pages=64, ram_mb=8, use_tmem=True)
        vm_a.add_job(usemem_factory(max_mb=32), label="usemem")
        vm_a.start()
        engine_a.run()

        engine_b, hv_b, vm_b = build_vm(tmem_pages=64, ram_mb=8, use_tmem=False)
        vm_b.add_job(usemem_factory(max_mb=32), label="usemem")
        vm_b.start()
        engine_b.run()

        assert vm_a.runs[0].duration_s < vm_b.runs[0].duration_s
