"""Tests for the guest kernel memory-management model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import GuestConfig, SimulationConfig
from repro.errors import ConfigurationError
from repro.guest.frontswap import FrontswapClient
from repro.guest.kernel import GuestKernel
from repro.hypervisor.xen import Hypervisor
from repro.sim.engine import SimulationEngine


def build_kernel(ram_pages=20, swap_pages=200, tmem_pages=16, use_tmem=True,
                 config=None):
    engine = SimulationEngine()
    config = config or SimulationConfig()
    hv = Hypervisor(engine, config, host_memory_pages=4096, tmem_pool_pages=tmem_pages)
    record = hv.create_domain("vm", ram_pages=ram_pages)
    frontswap = None
    if use_tmem:
        hv.register_tmem_client(record.vm_id)
        frontswap = FrontswapClient(record.vm_id, record.frontswap_pool_id, hv.hypercalls)
    kernel = GuestKernel(
        record.vm_id,
        ram_pages=ram_pages,
        swap_pages=swap_pages,
        config=config,
        disk=hv.swap_disk,
        frontswap=frontswap,
    )
    return kernel, hv


class TestBasicAccess:
    def test_first_touch_is_not_io(self):
        kernel, _ = build_kernel()
        outcome = kernel.access([0, 1, 2], now=0.0)
        assert outcome.pages_accessed == 3
        assert outcome.first_touches == 3
        assert outcome.faults_from_disk == 0
        assert outcome.faults_from_tmem == 0
        assert kernel.resident_pages == 3

    def test_repeated_access_is_a_minor_hit(self):
        kernel, _ = build_kernel()
        kernel.access([5], now=0.0)
        outcome = kernel.access([5], now=1.0)
        assert outcome.minor_hits == 1
        assert outcome.major_faults == 0

    def test_negative_page_rejected(self):
        kernel, _ = build_kernel()
        with pytest.raises(ConfigurationError):
            kernel.access([-1], now=0.0)

    def test_usable_ram_respects_kernel_reservation(self):
        config = SimulationConfig(guest=GuestConfig(kernel_reserved_fraction=0.5))
        kernel, _ = build_kernel(ram_pages=20, config=config)
        assert kernel.usable_ram_pages == 10

    def test_resident_set_never_exceeds_usable_ram(self):
        kernel, _ = build_kernel(ram_pages=20)
        kernel.access(range(100), now=0.0)
        assert kernel.resident_pages <= kernel.usable_ram_pages

    def test_footprint_counts_distinct_pages(self):
        kernel, _ = build_kernel(ram_pages=20)
        kernel.access([1, 2, 3, 2, 1], now=0.0)
        assert kernel.memory_footprint_pages() == 3


class TestEvictionPaths:
    def test_overflow_goes_to_tmem_first(self):
        kernel, hv = build_kernel(ram_pages=10, tmem_pages=64)
        kernel.access(range(30), now=0.0)
        assert kernel.stats.evictions_to_tmem > 0
        assert kernel.stats.evictions_to_disk == 0
        assert hv.host_memory.tmem_used_pages == kernel.tmem_pages

    def test_overflow_goes_to_disk_when_tmem_full(self):
        kernel, hv = build_kernel(ram_pages=10, tmem_pages=4)
        kernel.access(range(40), now=0.0)
        assert kernel.stats.evictions_to_disk > 0
        assert kernel.stats.failed_tmem_puts > 0
        assert kernel.swap.used_pages > 0

    def test_no_tmem_all_overflow_to_disk(self):
        kernel, hv = build_kernel(ram_pages=10, use_tmem=False)
        kernel.access(range(30), now=0.0)
        assert kernel.stats.evictions_to_tmem == 0
        assert kernel.stats.evictions_to_disk > 0

    def test_fault_back_from_tmem(self):
        kernel, _ = build_kernel(ram_pages=10, tmem_pages=64)
        kernel.access(range(20), now=0.0)      # pages 0.. evicted to tmem
        outcome = kernel.access([0], now=1.0)  # page 0 is the LRU victim
        assert outcome.faults_from_tmem == 1
        assert outcome.faults_from_disk == 0

    def test_fault_back_from_disk(self):
        kernel, _ = build_kernel(ram_pages=10, tmem_pages=0, use_tmem=False)
        kernel.access(range(20), now=0.0)
        outcome = kernel.access([0], now=1.0)
        assert outcome.faults_from_disk == 1

    def test_disk_fault_is_slower_than_tmem_fault(self):
        tmem_kernel, _ = build_kernel(ram_pages=10, tmem_pages=64)
        disk_kernel, _ = build_kernel(ram_pages=10, use_tmem=False)
        tmem_kernel.access(range(20), now=0.0)
        disk_kernel.access(range(20), now=0.0)
        tmem_fault = tmem_kernel.access([0], now=1.0).latency_s
        disk_fault = disk_kernel.access([0], now=1.0).latency_s
        assert disk_fault > tmem_fault * 5

    def test_lru_eviction_order(self):
        kernel, _ = build_kernel(ram_pages=11)  # usable = 10 after reservation
        usable = kernel.usable_ram_pages
        kernel.access(range(usable), now=0.0)
        kernel.access([usable], now=1.0)       # evicts page 0 (the LRU)
        assert not kernel.is_resident(0)
        assert kernel.is_resident(usable)


class TestFreeAndRelease:
    def test_free_resident_pages(self):
        kernel, _ = build_kernel()
        kernel.access([1, 2, 3], now=0.0)
        kernel.free([2], now=1.0)
        assert not kernel.is_resident(2)
        assert kernel.memory_footprint_pages() == 2

    def test_free_tmem_page_flushes_it(self):
        kernel, hv = build_kernel(ram_pages=10, tmem_pages=64)
        kernel.access(range(20), now=0.0)
        in_tmem_before = kernel.tmem_pages
        assert in_tmem_before > 0
        evicted = [p for p in range(20) if not kernel.is_resident(p)]
        kernel.free(evicted, now=1.0)
        assert kernel.tmem_pages == 0
        assert hv.host_memory.tmem_used_pages == 0

    def test_release_all_clears_everything(self):
        kernel, hv = build_kernel(ram_pages=10, tmem_pages=8)
        kernel.access(range(40), now=0.0)
        kernel.release_all(now=1.0)
        assert kernel.resident_pages == 0
        assert kernel.memory_footprint_pages() == 0
        assert kernel.tmem_pages == 0
        assert kernel.swap.used_pages == 0
        assert hv.host_memory.tmem_used_pages == 0

    def test_access_after_release_is_first_touch_again(self):
        kernel, _ = build_kernel(ram_pages=10, tmem_pages=8)
        kernel.access(range(20), now=0.0)
        kernel.release_all(now=1.0)
        outcome = kernel.access([0], now=2.0)
        assert outcome.first_touches == 1


class TestStatsConsistency:
    def test_stats_absorb_outcomes(self):
        kernel, _ = build_kernel(ram_pages=10, tmem_pages=8)
        kernel.access(range(25), now=0.0)
        kernel.access(range(25), now=1.0)
        stats = kernel.stats
        assert stats.accesses == 50
        assert stats.major_faults + stats.minor_hits == 50
        assert stats.major_faults == (
            stats.faults_from_tmem + stats.faults_from_disk + stats.first_touches
        )
        assert stats.evictions == stats.evictions_to_tmem + stats.evictions_to_disk
        assert 0.0 <= stats.fault_ratio <= 1.0

    @settings(deadline=None, max_examples=30)
    @given(
        pattern=st.lists(st.integers(0, 60), min_size=1, max_size=300),
        tmem_pages=st.sampled_from([0, 4, 32]),
    )
    def test_location_invariant_for_any_access_pattern(self, pattern, tmem_pages):
        """A page is resident, in tmem, on the swap disk, or never evicted —
        and the accounting of all four places stays mutually consistent."""
        kernel, hv = build_kernel(
            ram_pages=12, tmem_pages=tmem_pages, use_tmem=tmem_pages > 0
        )
        now = 0.0
        for page in pattern:
            kernel.access([page], now=now)
            now += 0.001
        assert kernel.resident_pages <= kernel.usable_ram_pages
        if kernel.frontswap is not None:
            assert kernel.tmem_pages == hv.host_memory.tmem_used_pages
        # Every page in tmem or swap must have been touched at some point.
        touched = set(pattern)
        assert kernel.memory_footprint_pages() <= len(touched)
        hv.check_invariants()
